// packet_pool.hpp — slab allocator for packet payload records.
//
// Every QUIC datagram and DNS message used to carry its payload in a
// `std::shared_ptr<const void>`: one heap allocation (control block + object)
// per packet, an atomic refcount bumped on every Packet copy, and a free on
// every drop. At fig5 rates that is hundreds of thousands of allocator
// round-trips per simulated second — pure overhead in a single-threaded
// simulator.
//
// PacketPool replaces that with the same chunk/slab + free-list + generation
// idiom as EventQueue's node slab: fixed-size slots carved out of 256-slot
// chunks, a LIFO free list for reuse, and a generation counter per slot so
// tests can prove a stale handle never aliases a recycled record. Refcounts
// are plain (non-atomic) integers: a pool and every PayloadRef into it belong
// to one simulation thread, which is the same single-ownership rule the
// Simulator itself imposes. Payload records may chain to further pool slots
// (see quic's ChunkSeg) by holding PayloadRef members — sharing a chain is a
// refcount bump, never a copy.
//
// Lifetime: the pool's storage is owned by an internal block that stays alive
// until both the PacketPool object is gone *and* the last PayloadRef has been
// released, so refs that outlive their pool (e.g. a PacketTrace record kept
// past a Testbed) degrade to a leak-free late release instead of a dangling
// read.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace slp::sim {

class PacketPool;

namespace detail {

struct PoolImpl;

/// Per-slot bookkeeping, placed at the front of each slot.
struct SlotHeader {
  PoolImpl* impl;             ///< owning pool storage (for release)
  void (*destroy)(void*);     ///< typed destructor for the payload area
  std::uint32_t refs;         ///< live reference count (non-atomic)
  std::uint32_t generation;   ///< bumped on every release; stale-handle guard
  std::uint32_t slot;         ///< own slot index (chunk << shift | offset)
  std::uint32_t next_free;    ///< free-list link while the slot is free
};

inline constexpr std::uint32_t kNilSlot = 0xFFFFFFFFu;

struct PoolImpl {
  std::vector<std::unique_ptr<std::byte[]>> chunks;
  std::uint32_t free_head = kNilSlot;
  std::uint64_t live = 0;
  std::uint64_t total_allocs = 0;
  std::uint64_t peak_live = 0;
  bool owner_alive = true;  ///< false once the PacketPool facade is destroyed
};

void release_slot(SlotHeader* hdr);

}  // namespace detail

/// Shared, immutable-once-sent reference to a pooled payload record.
/// Copying bumps a plain refcount; the record is destroyed and its slot
/// recycled when the last reference drops.
class PayloadRef {
 public:
  constexpr PayloadRef() = default;

  PayloadRef(const PayloadRef& other) : hdr_{other.hdr_} {
    if (hdr_ != nullptr) hdr_->refs++;
  }

  PayloadRef(PayloadRef&& other) noexcept : hdr_{other.hdr_} { other.hdr_ = nullptr; }

  PayloadRef& operator=(const PayloadRef& other) {
    if (other.hdr_ != nullptr) other.hdr_->refs++;
    reset();
    hdr_ = other.hdr_;
    return *this;
  }

  PayloadRef& operator=(PayloadRef&& other) noexcept {
    if (this != &other) {
      reset();
      hdr_ = other.hdr_;
      other.hdr_ = nullptr;
    }
    return *this;
  }

  ~PayloadRef() { reset(); }

  [[nodiscard]] explicit operator bool() const { return hdr_ != nullptr; }

  /// Typed view of the payload area. The pool is type-erased exactly like the
  /// `shared_ptr<const void>` it replaces: the caller names the type it put
  /// in, just as `static_pointer_cast` did before.
  template <typename T>
  [[nodiscard]] const T* as() const {
    return hdr_ == nullptr ? nullptr : reinterpret_cast<const T*>(payload_area());
  }

  /// Mutable view for filling a freshly made record before it is shared.
  /// Mutating a record that other refs can already see is a logic error.
  template <typename T>
  [[nodiscard]] T* as_mutable() const {
    return hdr_ == nullptr ? nullptr : reinterpret_cast<T*>(payload_area());
  }

  void reset() {
    if (hdr_ != nullptr) {
      detail::SlotHeader* hdr = hdr_;
      hdr_ = nullptr;
      if (--hdr->refs == 0) detail::release_slot(hdr);
    }
  }

  [[nodiscard]] std::uint32_t use_count() const { return hdr_ == nullptr ? 0 : hdr_->refs; }

 private:
  friend class PacketPool;
  explicit PayloadRef(detail::SlotHeader* hdr) : hdr_{hdr} {}

  [[nodiscard]] std::byte* payload_area() const {
    return reinterpret_cast<std::byte*>(hdr_) + sizeof(detail::SlotHeader);
  }

  detail::SlotHeader* hdr_ = nullptr;
};

class PacketPool {
 public:
  /// Slot geometry. 288 payload bytes covers the largest pooled record
  /// (quic's Payload, ~230 B) with headroom; anything bigger fails to compile
  /// rather than silently spilling to the heap.
  static constexpr std::size_t kSlotBytes = sizeof(detail::SlotHeader) + 288;
  static constexpr std::size_t kPayloadCapacity = kSlotBytes - sizeof(detail::SlotHeader);
  static constexpr std::uint32_t kChunkShift = 8;  ///< 256 slots per chunk
  static constexpr std::uint32_t kChunkSlots = 1u << kChunkShift;

  PacketPool() : impl_{new detail::PoolImpl} {}
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;
  ~PacketPool();

  /// The calling thread's pool. Payloads made here must stay on this thread —
  /// the same rule as the Simulator that sends them.
  static PacketPool& local();

  template <typename T, typename... Args>
  [[nodiscard]] PayloadRef make(Args&&... args) {
    static_assert(sizeof(T) <= kPayloadCapacity, "payload record exceeds pool slot size");
    static_assert(alignof(T) <= alignof(std::max_align_t), "over-aligned payloads unsupported");
    detail::SlotHeader* hdr = acquire_slot();
    ::new (static_cast<void*>(reinterpret_cast<std::byte*>(hdr) + sizeof(detail::SlotHeader)))
        T(std::forward<Args>(args)...);
    hdr->destroy = [](void* p) { static_cast<T*>(p)->~T(); };
    return PayloadRef{hdr};
  }

  // --- introspection for tests & benchmarks -------------------------------

  /// Stable identity of a record: survives in value form after the ref dies,
  /// so tests can prove recycled slots are detected via the generation.
  struct Handle {
    std::uint32_t slot = detail::kNilSlot;
    std::uint32_t generation = 0;
  };

  [[nodiscard]] Handle handle(const PayloadRef& ref) const;
  /// True while the record the handle was taken from is still the one living
  /// in that slot (generation match). A freed or recycled slot reports false.
  [[nodiscard]] bool alive(Handle h) const;

  [[nodiscard]] std::uint64_t live() const { return impl_->live; }
  [[nodiscard]] std::uint64_t total_allocs() const { return impl_->total_allocs; }
  [[nodiscard]] std::uint64_t peak_live() const { return impl_->peak_live; }
  /// Slots ever carved out (capacity), not current occupancy.
  [[nodiscard]] std::size_t slots() const { return impl_->chunks.size() * kChunkSlots; }

 private:
  [[nodiscard]] detail::SlotHeader* acquire_slot();
  [[nodiscard]] detail::SlotHeader* slot_header(std::uint32_t slot) const;
  void grow();

  detail::PoolImpl* impl_;
};

}  // namespace slp::sim
