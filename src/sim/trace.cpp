#include "sim/trace.hpp"

namespace slp::sim {

void PacketTrace::attach(Host& host) {
  detach();
  host_ = &host;
  host.set_capture([this](const Packet& pkt, bool outbound) {
    records_.push_back(CaptureRecord{host_->sim().now(), outbound, pkt});
  });
}

void PacketTrace::detach() {
  if (host_ != nullptr) {
    host_->set_capture(nullptr);
    host_ = nullptr;
  }
}

std::vector<CaptureRecord> PacketTrace::filter(
    const std::function<bool(const CaptureRecord&)>& pred) const {
  std::vector<CaptureRecord> out;
  for (const auto& r : records_) {
    if (pred(r)) out.push_back(r);
  }
  return out;
}

}  // namespace slp::sim
