// network.hpp — ownership and wiring of a simulated topology.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/host.hpp"
#include "sim/link.hpp"
#include "sim/nat.hpp"
#include "sim/routing.hpp"

namespace slp::sim {

/// Owns the nodes and links of one simulated internet. Factory methods
/// return references that remain valid for the lifetime of the Network
/// (nodes are held by unique_ptr; the vector only stores pointers).
class Network {
 public:
  explicit Network(Simulator& sim) : sim_{&sim} {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] Simulator& sim() const { return *sim_; }

  Host& add_host(std::string name, Ipv4Addr addr) {
    return add_node<Host>(std::move(name), addr);
  }
  Router& add_router(std::string name) { return add_node<Router>(std::move(name)); }
  Nat& add_nat(std::string name, Ipv4Addr inside_addr, Ipv4Addr external_addr) {
    return add_node<Nat>(std::move(name), inside_addr, external_addr);
  }

  /// Constructs any Node subclass in place.
  template <typename T, typename... Args>
  T& add_node(Args&&... args) {
    auto node = std::make_unique<T>(*sim_, std::forward<Args>(args)...);
    T& ref = *node;
    nodes_.push_back(std::move(node));
    return ref;
  }

  /// Wires two interfaces with a new link.
  Link& connect(Interface& a, Interface& b, Link::Config config) {
    links_.push_back(std::make_unique<Link>(*sim_, a, b, std::move(config)));
    return *links_.back();
  }

  /// Symmetric convenience config: same rate/delay both ways.
  [[nodiscard]] static Link::Config symmetric(DataRate rate, Duration delay,
                                              std::size_t queue_bytes = 256 * 1024) {
    Link::Config config;
    config.a_to_b.rate = rate;
    config.a_to_b.delay = delay;
    config.a_to_b.queue_capacity_bytes = queue_bytes;
    config.b_to_a = config.a_to_b;
    return config;
  }

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

 private:
  Simulator* sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
};

}  // namespace slp::sim
