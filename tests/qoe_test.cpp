// qoe_test — the real-time application QoE suite (src/qoe/ + the fig8
// campaigns in measure/qoe_campaign.hpp).
//
// Covers the pure controllers (AbrLadder's BBA map, the E-model MOS curve,
// LagDetector's step detection), each session model end-to-end on the
// testbed, and the sweep contract every campaign in this repo honours: the
// merged result — including the rendered metrics/trace documents — is
// byte-identical for any --jobs, and the analytic fast-forward paths change
// nothing (--fast-forward=0|1 equivalence) for all three campaigns.
#include <gtest/gtest.h>

#include <string>

#include "measure/qoe_campaign.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "qoe/abr.hpp"
#include "qoe/game.hpp"
#include "qoe/vc.hpp"
#include "runner/sweep.hpp"

namespace slp::measure {
namespace {

// ---------------------------------------------------------- pure controllers

TEST(AbrLadder, BbaMapIsMonotoneAndSaturates) {
  const qoe::AbrLadder ladder;
  EXPECT_EQ(ladder.pick(0.0), 0);
  EXPECT_EQ(ladder.pick(ladder.reservoir_s), 0);
  EXPECT_EQ(ladder.pick(ladder.cushion_s), static_cast<int>(ladder.rungs_mbps.size()) - 1);
  EXPECT_EQ(ladder.pick(1000.0), static_cast<int>(ladder.rungs_mbps.size()) - 1);
  int prev = 0;
  for (double b = 0.0; b <= 40.0; b += 0.25) {
    const int rung = ladder.pick(b);
    EXPECT_GE(rung, prev) << "rate ladder must be monotone in buffer level";
    prev = rung;
  }
}

TEST(EModel, CleanCallBeatsLossyAndLateCalls) {
  const double clean = qoe::emodel_mos(145.0, 0.0);
  EXPECT_GT(clean, 4.0);           // short delay, no loss: "good" territory
  EXPECT_LT(qoe::emodel_mos(145.0, 5.0), clean);   // loss hurts
  EXPECT_LT(qoe::emodel_mos(400.0, 0.0), clean);   // delay past 177.3 ms hurts
  EXPECT_GE(qoe::emodel_mos(2000.0, 80.0), 1.0);   // floor is MOS 1
  EXPECT_LE(qoe::emodel_mos(0.0, 0.0), 5.0);
}

TEST(LagDetector, FlagsStepsNotSustainedShifts) {
  qoe::LagDetector det;
  bool warmup_spike = false;
  for (int i = 0; i < 20; ++i) warmup_spike |= det.add(40.0);
  EXPECT_FALSE(warmup_spike) << "steady baseline must not spike";
  EXPECT_TRUE(det.add(400.0)) << "a 10x RTT step is a lag spike";
  // A sustained shift raises the median; after the window turns over the
  // new level stops counting as a spike (players acclimatize, the detector
  // looks for steps).
  bool tail_spike = false;
  for (int i = 0; i < 40; ++i) tail_spike = det.add(400.0);
  EXPECT_FALSE(tail_spike);
}

// ---------------------------------------------------- campaign smoke + merge

AbrCampaign::Config abr_config() {
  AbrCampaign::Config config;
  config.seed = 21;
  config.sessions = 1;
  config.session.watch = Duration::seconds(40);
  config.obs.metrics = true;
  return config;
}

VcCampaign::Config vc_config() {
  VcCampaign::Config config;
  config.seed = 22;
  config.calls = 1;
  config.session.duration = Duration::seconds(20);
  config.obs.metrics = true;
  return config;
}

GameCampaign::Config game_config() {
  GameCampaign::Config config;
  config.seed = 23;
  config.matches = 1;
  config.session.duration = Duration::seconds(20);
  config.obs.metrics = true;
  config.obs.provenance = true;
  return config;
}

TEST(AbrCampaign, PlaysTheWholeSessionAndExportsQoe) {
  const auto r = AbrCampaign::run(abr_config());
  EXPECT_EQ(r.sessions_completed, 1);
  EXPECT_EQ(r.segments, 10u);  // 40 s of content in 4 s segments
  ASSERT_EQ(r.startup_s.size(), 1u);
  EXPECT_GT(r.startup_s.values()[0], 0.0);
  EXPECT_GE(r.rebuffer_ratio.values()[0], 0.0);
  EXPECT_LT(r.rebuffer_ratio.values()[0], 1.0);
  EXPECT_FALSE(r.segment_mbps.empty());
  EXPECT_GT(r.mean_rung_mbps.values()[0], 0.0);
}

TEST(VcCampaign, WindowsCarryMosAndPhase) {
  const auto r = VcCampaign::run(vc_config());
  EXPECT_EQ(r.calls_completed, 1);
  EXPECT_GT(r.frames_sent, 0u);
  ASSERT_FALSE(r.mos.empty());
  for (double mos : r.mos.values()) {
    EXPECT_GE(mos, 1.0);
    EXPECT_LE(mos, 5.0);
  }
  EXPECT_FALSE(r.mos_by_phase.empty());
  for (const auto& [phase, group] : r.mos_by_phase.groups()) {
    EXPECT_LT(phase, 15u) << "phase keys live on the 15 s handover grid";
    (void)group;
  }
  // Most frames make a 120 ms jitter buffer over a ~40 ms RTT link.
  EXPECT_GT(r.frames_sent, r.frames_missed * 2);
}

TEST(GameCampaign, TicksResolveAndSpikesCarryStallAttribution) {
  const auto r = GameCampaign::run(game_config());
  EXPECT_EQ(r.matches_completed, 1);
  EXPECT_EQ(r.ticks_sent, 600u);  // 20 s at 30 Hz
  EXPECT_GT(r.rtt_ms.size(), 500u) << "most ticks must be answered";
  for (const auto& [phase, group] : r.spikes_by_phase.groups()) {
    EXPECT_LT(phase, 15u);
    (void)group;
  }
}

template <typename Campaign>
void expect_jobs_invariant(typename Campaign::Config config) {
  config.obs.metrics = true;
  config.obs.trace = true;
  const auto serial = runner::run_merged<Campaign>({2, 1}, config);
  const auto parallel = runner::run_merged<Campaign>({2, 8}, config);
  const std::string metrics = obs::metrics_json(serial.obs);
  EXPECT_EQ(metrics, obs::metrics_json(parallel.obs));
  EXPECT_FALSE(metrics.empty());
  EXPECT_EQ(obs::trace_json(serial.obs.events), obs::trace_json(parallel.obs.events));
}

TEST(QoeDeterminism, AbrExportsAreJobsInvariant) {
  expect_jobs_invariant<AbrCampaign>(abr_config());
}

TEST(QoeDeterminism, VcExportsAreJobsInvariant) {
  expect_jobs_invariant<VcCampaign>(vc_config());
}

TEST(QoeDeterminism, GameExportsAreJobsInvariant) {
  expect_jobs_invariant<GameCampaign>(game_config());
}

TEST(QoeDeterminism, AbrFastForwardChangesNothing) {
  AbrCampaign::Config config = abr_config();
  config.fast_forward = true;
  const auto on = AbrCampaign::run(config);
  config.fast_forward = false;
  const auto off = AbrCampaign::run(config);
  EXPECT_EQ(on.startup_s.values(), off.startup_s.values());
  EXPECT_EQ(on.segment_mbps.values(), off.segment_mbps.values());
  EXPECT_EQ(on.rebuffer_events, off.rebuffer_events);
  EXPECT_EQ(on.quality_switches, off.quality_switches);
}

TEST(QoeDeterminism, VcFastForwardChangesNothing) {
  VcCampaign::Config config = vc_config();
  config.fast_forward = true;
  const auto on = VcCampaign::run(config);
  config.fast_forward = false;
  const auto off = VcCampaign::run(config);
  EXPECT_EQ(on.mos.values(), off.mos.values());
  EXPECT_EQ(on.transit_ms.values(), off.transit_ms.values());
  EXPECT_EQ(on.frames_missed, off.frames_missed);
  EXPECT_EQ(on.datagrams_lost, off.datagrams_lost);
}

TEST(QoeDeterminism, GameFastForwardChangesNothing) {
  GameCampaign::Config config = game_config();
  config.fast_forward = true;
  const auto on = GameCampaign::run(config);
  config.fast_forward = false;
  const auto off = GameCampaign::run(config);
  EXPECT_EQ(on.rtt_ms.values(), off.rtt_ms.values());
  EXPECT_EQ(on.spikes, off.spikes);
  EXPECT_EQ(on.ticks_lost, off.ticks_lost);
  EXPECT_EQ(on.spikes_with_stall, off.spikes_with_stall);
}

}  // namespace
}  // namespace slp::measure
