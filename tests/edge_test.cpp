// edge_test.cpp — edge cases and failure-injection across modules.
#include <gtest/gtest.h>

#include "apps/speedtest.hpp"
#include "leo/access.hpp"
#include "phy/outage.hpp"
#include "quic/quic.hpp"
#include "sim/network.hpp"
#include "tcp/tcp.hpp"
#include "web/browser.hpp"

namespace slp {
namespace {

using namespace slp::literals;
using sim::make_addr;

// ------------------------------------------------------------ sim edges

TEST(SimEdge, ManyCancelledEventsDoNotLeakIntoExecution) {
  sim::Simulator simulator;
  int fired = 0;
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 10'000; ++i) {
    ids.push_back(simulator.schedule_in(Duration::millis(i + 1), [&] { ++fired; }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) simulator.cancel(ids[i]);
  simulator.run();
  EXPECT_EQ(fired, 5'000);
  EXPECT_EQ(simulator.pending_events(), 0u);
}

TEST(SimEdge, TimerArmAtAbsoluteTime) {
  sim::Simulator simulator;
  sim::Timer timer{simulator};
  TimePoint fired_at;
  timer.arm_at(TimePoint::epoch() + 250_ms, [&] { fired_at = simulator.now(); });
  EXPECT_TRUE(timer.armed());
  EXPECT_EQ(timer.expiry(), TimePoint::epoch() + 250_ms);
  simulator.run();
  EXPECT_EQ(fired_at, TimePoint::epoch() + 250_ms);
}

TEST(SimEdge, IcmpErrorNeverAnswersIcmpError) {
  // A time-exceeded quoting a time-exceeded must not be generated: send an
  // ICMP error with TTL 1 through a router and verify silence.
  sim::Simulator simulator;
  sim::Network net{simulator};
  sim::Host& a = net.add_host("a", make_addr(10, 0, 0, 2));
  sim::Host& c = net.add_host("c", make_addr(10, 1, 0, 2));
  sim::Router& r = net.add_router("r");
  sim::Interface& r1 = r.add_interface(make_addr(10, 0, 0, 1));
  sim::Interface& r2 = r.add_interface(make_addr(10, 1, 0, 1));
  net.connect(a.uplink(), r1, sim::Network::symmetric(DataRate::mbps(100), 1_ms));
  net.connect(r2, c.uplink(), sim::Network::symmetric(DataRate::mbps(100), 1_ms));
  r.routes().add_route(make_addr(10, 0, 0, 0), 24, r1);
  r.routes().add_route(make_addr(10, 1, 0, 0), 24, r2);

  int errors_back = 0;
  a.add_error_listener([&](const sim::Packet&) { ++errors_back; });
  sim::Packet inner;
  inner.src = a.addr();
  inner.dst = c.addr();
  inner.proto = sim::Protocol::kUdp;
  inner.size_bytes = 60;
  sim::Packet err = sim::make_time_exceeded(a.addr(), inner);
  err.src = 0;
  err.dst = c.addr();
  err.ttl = 1;  // expires at the router
  a.send(std::move(err));
  simulator.run();
  EXPECT_EQ(errors_back, 0);  // no error-about-error storm
  EXPECT_EQ(r.stats().ttl_expired, 1u);
}

TEST(SimEdge, HostEphemeralPortsWrapSafely) {
  sim::Simulator simulator;
  sim::Network net{simulator};
  sim::Host& h = net.add_host("h", make_addr(10, 0, 0, 1));
  std::uint16_t first = h.ephemeral_port();
  // Exhaust the 16-bit space: must wrap without returning 0.
  for (int i = 0; i < 70'000; ++i) {
    EXPECT_NE(h.ephemeral_port(), 0);
  }
  EXPECT_NE(first, 0);
}

// ------------------------------------------------------------ tcp edges

TEST(TcpEdge, ZeroByteSendIsHarmless) {
  sim::Simulator simulator;
  sim::Network net{simulator};
  sim::Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
  sim::Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
  net.connect(a.uplink(), b.uplink(), sim::Network::symmetric(DataRate::mbps(100), 5_ms));
  tcp::TcpStack sa{a};
  tcp::TcpStack sb{b};
  std::uint64_t got = 0;
  sb.listen(80, [&](tcp::TcpConnection& c) {
    c.on_data = [&](std::uint64_t n) { got += n; };
  });
  tcp::TcpConnection& conn = sa.connect(b.addr(), 80);
  conn.on_established = [&conn] {
    conn.send(0);
    conn.send(100);
  };
  simulator.run();
  EXPECT_EQ(got, 100u);
}

TEST(TcpEdge, CloseWithNoDataCompletesFinHandshake) {
  sim::Simulator simulator;
  sim::Network net{simulator};
  sim::Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
  sim::Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
  net.connect(a.uplink(), b.uplink(), sim::Network::symmetric(DataRate::mbps(100), 5_ms));
  tcp::TcpStack sa{a};
  tcp::TcpStack sb{b};
  bool server_closed = false;
  sb.listen(80, [&](tcp::TcpConnection& c) {
    c.on_closed = [&] { server_closed = true; };
    // Server closes back immediately on learning the client is done.
    c.on_established = [&c] { c.close(); };
  });
  bool client_closed = false;
  tcp::TcpConnection& conn = sa.connect(b.addr(), 80);
  conn.on_closed = [&] { client_closed = true; };
  conn.on_established = [&conn] { conn.close(); };
  simulator.run_until(TimePoint::epoch() + 30_s);
  EXPECT_TRUE(client_closed);
  EXPECT_TRUE(server_closed);
}

TEST(TcpEdge, ListenerIgnoresStrayNonSynPackets) {
  sim::Simulator simulator;
  sim::Network net{simulator};
  sim::Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
  sim::Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
  net.connect(a.uplink(), b.uplink(), sim::Network::symmetric(DataRate::mbps(100), 5_ms));
  tcp::TcpStack sb{b};
  int accepted = 0;
  sb.listen(80, [&](tcp::TcpConnection&) { ++accepted; });
  // A bare ACK to the listening port must create no connection.
  sim::Packet stray;
  stray.dst = b.addr();
  stray.src_port = 5555;
  stray.dst_port = 80;
  stray.proto = sim::Protocol::kTcp;
  stray.size_bytes = 40;
  sim::TcpHeader hdr;
  hdr.ack_flag = true;
  hdr.ack = 1234;
  stray.tcp = hdr;
  a.send(std::move(stray));
  simulator.run();
  EXPECT_EQ(accepted, 0);
  EXPECT_EQ(sb.connection_count(), 0u);
}

// ------------------------------------------------------------ quic edges

TEST(QuicEdge, MessageOfExactlyOnePayloadIsOneChunk) {
  sim::Simulator simulator{61};
  sim::Network net{simulator};
  sim::Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
  sim::Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
  net.connect(a.uplink(), b.uplink(), sim::Network::symmetric(DataRate::mbps(100), 5_ms));
  quic::QuicStack ca{a};
  quic::QuicStack cb{b};
  std::uint64_t got_bytes = 0;
  cb.listen(443, [&](quic::QuicConnection& c) {
    c.on_message = [&](std::uint64_t, std::uint64_t bytes, TimePoint) { got_bytes = bytes; };
  });
  quic::QuicConnection& conn = ca.connect(b.addr(), 443);
  conn.on_established = [&conn] { conn.send_message(1350); };
  simulator.run();
  EXPECT_EQ(got_bytes, 1350u);
}

TEST(QuicEdge, InterleavedStreamAndMessagesBothComplete) {
  sim::Simulator simulator{62};
  sim::Network net{simulator};
  sim::Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
  sim::Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
  net.connect(a.uplink(), b.uplink(), sim::Network::symmetric(DataRate::mbps(50), 10_ms));
  quic::QuicStack ca{a};
  quic::QuicStack cb{b};
  std::uint64_t stream_bytes = 0;
  int messages = 0;
  cb.listen(443, [&](quic::QuicConnection& c) {
    c.on_stream_data = [&](std::uint64_t n) { stream_bytes += n; };
    c.on_message = [&](std::uint64_t, std::uint64_t, TimePoint) { ++messages; };
  });
  quic::QuicConnection& conn = ca.connect(b.addr(), 443);
  conn.on_established = [&conn, &simulator] {
    conn.send_stream(2'000'000);
    for (int i = 0; i < 10; ++i) {
      simulator.schedule_in(Duration::millis(30 * i), [&conn] { conn.send_message(8'000); });
    }
  };
  simulator.run();
  EXPECT_EQ(stream_bytes, 2'000'000u);
  EXPECT_EQ(messages, 10);
}

TEST(QuicEdge, SurvivesTotalOutageMidTransfer) {
  sim::Simulator simulator{63};
  sim::Network net{simulator};
  sim::Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
  sim::Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
  sim::Link& link = net.connect(a.uplink(), b.uplink(),
                                sim::Network::symmetric(DataRate::mbps(50), 10_ms));
  class Window final : public sim::LossModel {
   public:
    bool should_drop(TimePoint now, const sim::Packet&) override {
      return now >= TimePoint::epoch() + 500_ms && now < TimePoint::epoch() + 3_s;
    }
  };
  Window outage;
  link.set_loss(0, &outage);
  link.set_loss(1, &outage);
  quic::QuicStack ca{a};
  quic::QuicStack cb{b};
  std::uint64_t got = 0;
  cb.listen(443, [&](quic::QuicConnection& c) {
    c.on_stream_data = [&](std::uint64_t n) { got += n; };
  });
  quic::QuicConnection& conn = ca.connect(b.addr(), 443);
  conn.on_established = [&conn] { conn.send_stream(5'000'000); };
  simulator.run_until(TimePoint::epoch() + Duration::minutes(5));
  EXPECT_EQ(got, 5'000'000u);
  EXPECT_GT(conn.stats().ptos, 0u);
}

// ------------------------------------------------------------ access edges

TEST(AccessEdge, OutageWindowLosesPingsButCampaignContinues) {
  sim::Simulator simulator{64};
  sim::Network net{simulator};
  leo::StarlinkAccess::Config config;
  // Frequent outages for the test.
  config.outage.mean_interarrival = Duration::seconds(20);
  config.outage.duration_mu = 0.0;  // ~1s median
  config.outage.duration_sigma = 0.3;
  leo::StarlinkAccess access{net, config};
  sim::Host& server = net.add_host("server", make_addr(203, 0, 113, 50));
  sim::Interface& pop_if = access.pop().add_interface(make_addr(203, 0, 113, 1));
  net.connect(pop_if, server.uplink(), sim::Network::symmetric(DataRate::gbps(10), 1_ms));
  access.pop().routes().add_route(make_addr(203, 0, 113, 0), 24, pop_if);

  int replies = 0;
  int sent = 0;
  for (int i = 0; i < 300; ++i) {
    simulator.schedule_at(TimePoint::epoch() + Duration::millis(500) * static_cast<double>(i),
                          [&, i] {
                            ++sent;
                            access.client().bind_echo_reply(
                                static_cast<std::uint16_t>(i),
                                [&replies](const sim::Packet&) { ++replies; });
                            sim::Packet ping;
                            ping.dst = server.addr();
                            ping.proto = sim::Protocol::kIcmp;
                            ping.size_bytes = 64;
                            ping.icmp = sim::IcmpHeader{sim::IcmpType::kEchoRequest,
                                                        static_cast<std::uint16_t>(i), 0,
                                                        nullptr};
                            access.client().send(std::move(ping));
                          });
  }
  simulator.run();
  EXPECT_EQ(sent, 300);
  EXPECT_LT(replies, sent);        // outages ate some
  EXPECT_GT(replies, sent * 3 / 4);  // but most got through
}

// ------------------------------------------------------------ web edges

TEST(WebEdge, EmptyObjectPageCompletesAfterHtml) {
  sim::Simulator simulator{65};
  sim::Network net{simulator};
  sim::Host& client = net.add_host("client", make_addr(10, 0, 0, 2));
  sim::Host& server_host = net.add_host("server", make_addr(10, 0, 0, 3));
  net.connect(client.uplink(), server_host.uplink(),
              sim::Network::symmetric(DataRate::mbps(100), 5_ms));
  tcp::TcpStack cs{client};
  tcp::TcpStack ss{server_host};
  web::WebServer server{ss, simulator.fork_rng("ws")};
  web::Browser::Config config;
  config.server_addr = server_host.addr();
  web::Browser browser{cs, server, config};

  web::WebPage page;
  page.name = "empty";
  page.html_bytes = 20'000;
  page.num_origins = 1;  // no objects at all
  bool done = false;
  web::Browser::VisitResult result;
  browser.visit(page, [&](const web::Browser::VisitResult& r) {
    result = r;
    done = true;
  });
  simulator.run_until(TimePoint::epoch() + Duration::minutes(2));
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.connections_opened, 1);
  EXPECT_GT(result.on_load.to_seconds(), 0.0);
}

// ------------------------------------------------------------ speedtest edges

TEST(SpeedtestEdge, SingleConnectionStillMeasures) {
  sim::Simulator simulator{66};
  sim::Network net{simulator};
  sim::Host& client = net.add_host("client", make_addr(10, 0, 0, 2));
  sim::Host& server_host = net.add_host("server", make_addr(10, 0, 0, 3));
  net.connect(client.uplink(), server_host.uplink(),
              sim::Network::symmetric(DataRate::mbps(30), 10_ms, 1024 * 1024));
  tcp::TcpStack cs{client};
  tcp::TcpStack ss{server_host};
  apps::SpeedtestServer server{ss};
  apps::Speedtest::Config config;
  config.server = server_host.addr();
  config.connections = 1;
  config.duration = Duration::seconds(8);
  apps::Speedtest test{cs, config};
  double mbps = 0.0;
  test.on_complete = [&](const apps::Speedtest::Result& r) { mbps = r.goodput.to_mbps(); };
  test.start();
  simulator.run_until(TimePoint::epoch() + 30_s);
  EXPECT_GT(mbps, 24.0);
  EXPECT_LE(mbps, 30.0);
}

}  // namespace
}  // namespace slp
