#include <gtest/gtest.h>

#include "geo/geo_access.hpp"
#include "leo/access.hpp"
#include "mbox/tracebox.hpp"
#include "mbox/traceroute.hpp"
#include "mbox/wehe.hpp"
#include "sim/network.hpp"
#include "tcp/tcp.hpp"

namespace slp::mbox {
namespace {

using namespace slp::literals;
using sim::make_addr;

constexpr sim::Ipv4Addr kServerAddr = make_addr(203, 0, 113, 80);

/// Attaches a server behind an access's PoP.
sim::Host& attach_server(sim::Network& net, sim::Router& pop) {
  sim::Host& server = net.add_host("server", kServerAddr);
  sim::Interface& pop_if = pop.add_interface(make_addr(203, 0, 113, 1));
  net.connect(pop_if, server.uplink(),
              sim::Network::symmetric(DataRate::gbps(10), Duration::from_millis(2)));
  pop.routes().add_route(make_addr(203, 0, 113, 0), 24, pop_if);
  return server;
}

// ------------------------------------------------------------ Traceroute

TEST(TracerouteStarlink, RevealsTwoNatLevelsThenPop) {
  sim::Simulator sim{51};
  sim::Network net{sim};
  leo::StarlinkAccess access{net, leo::StarlinkAccess::Config{}};
  attach_server(net, access.pop());

  std::vector<Traceroute::Hop> hops;
  Traceroute::Config cfg;
  cfg.target = kServerAddr;
  Traceroute tr{access.client(), cfg};
  tr.on_complete = [&](const std::vector<Traceroute::Hop>& h) { hops = h; };
  tr.start();
  sim.run_until(TimePoint::epoch() + Duration::minutes(2));
  ASSERT_GE(hops.size(), 4u);
  // The paper's §3.5 observation.
  EXPECT_EQ(hops[0].reporter, sim::kCpeNatAddr);
  EXPECT_EQ(hops[1].reporter, sim::kCgnNatAddr);
  EXPECT_EQ(hops[2].reporter, make_addr(149, 6, 50, 254));  // PoP, ingress side
  EXPECT_TRUE(hops.back().reached_destination);
  EXPECT_EQ(hops.back().reporter, kServerAddr);
  // RTTs beyond the satellite hop are Starlink-sized.
  EXPECT_GT(hops[1].rtt.to_millis(), 15.0);
}

TEST(TracerouteGeo, ReachesDestinationWithoutRevealingPep) {
  sim::Simulator sim{52};
  sim::Network net{sim};
  geo::GeoAccess access{net, geo::GeoAccess::Config{}};
  attach_server(net, access.pop());

  std::vector<Traceroute::Hop> hops;
  Traceroute::Config cfg;
  cfg.target = kServerAddr;
  Traceroute tr{access.client(), cfg};
  tr.on_complete = [&](const std::vector<Traceroute::Hop>& h) { hops = h; };
  tr.start();
  sim.run_until(TimePoint::epoch() + Duration::minutes(3));
  ASSERT_GE(hops.size(), 4u);
  EXPECT_TRUE(hops.back().reached_destination);
  // Four reporting hops: modem, gateway, pop, destination — the PEP is
  // invisible at the IP layer.
  EXPECT_EQ(hops.size(), 4u);
}

// ------------------------------------------------------------ Tracebox

TEST(TraceboxStarlink, NatsAlterOnlyChecksumsAndNoPep) {
  sim::Simulator sim{53};
  sim::Network net{sim};
  leo::StarlinkAccess access{net, leo::StarlinkAccess::Config{}};
  sim::Host& server = attach_server(net, access.pop());
  tcp::TcpStack server_stack{server};
  server_stack.listen(80, [](tcp::TcpConnection&) {});

  Tracebox::Report report;
  bool done = false;
  Tracebox::Config cfg;
  cfg.target = kServerAddr;
  Tracebox tb{access.client(), cfg};
  tb.on_complete = [&](const Tracebox::Report& r) {
    report = r;
    done = true;
  };
  tb.start();
  sim.run_until(TimePoint::epoch() + Duration::minutes(3));
  ASSERT_TRUE(done);
  EXPECT_TRUE(report.nat_detected);
  EXPECT_FALSE(report.pep_detected);
  EXPECT_GT(report.destination_distance, 0);
  EXPECT_EQ(report.handshake_ttl, report.destination_distance);
  // "Only the TCP and UDP checksums are altered by the NATs."
  ASSERT_EQ(report.all_modified_fields.size(), 1u);
  EXPECT_EQ(report.all_modified_fields[0], "tcp-checksum");
}

TEST(TraceboxGeo, DetectsPepTerminatingHandshakeMidPath) {
  sim::Simulator sim{54};
  sim::Network net{sim};
  geo::GeoAccess access{net, geo::GeoAccess::Config{}};
  sim::Host& server = attach_server(net, access.pop());
  tcp::TcpStack server_stack{server};
  server_stack.listen(80, [](tcp::TcpConnection&) {});

  Tracebox::Report report;
  bool done = false;
  Tracebox::Config cfg;
  cfg.target = kServerAddr;
  Tracebox tb{access.client(), cfg};
  tb.on_complete = [&](const Tracebox::Report& r) {
    report = r;
    done = true;
  };
  tb.start();
  sim.run_until(TimePoint::epoch() + Duration::minutes(5));
  ASSERT_TRUE(done);
  EXPECT_TRUE(report.pep_detected);
  EXPECT_GT(report.destination_distance, report.handshake_ttl);
}

TEST(TraceboxGeo, NoPepDetectedWhenDisabled) {
  sim::Simulator sim{55};
  sim::Network net{sim};
  geo::GeoAccess::Config geo_cfg;
  geo_cfg.pep.enabled = false;
  geo::GeoAccess access{net, geo_cfg};
  sim::Host& server = attach_server(net, access.pop());
  tcp::TcpStack server_stack{server};
  server_stack.listen(80, [](tcp::TcpConnection&) {});

  Tracebox::Report report;
  bool done = false;
  Tracebox::Config cfg;
  cfg.target = kServerAddr;
  Tracebox tb{access.client(), cfg};
  tb.on_complete = [&](const Tracebox::Report& r) {
    report = r;
    done = true;
  };
  tb.start();
  sim.run_until(TimePoint::epoch() + Duration::minutes(5));
  ASSERT_TRUE(done);
  EXPECT_FALSE(report.pep_detected);
  EXPECT_EQ(report.handshake_ttl, report.destination_distance);
}

// ------------------------------------------------------------ Wehe

class WeheTest : public ::testing::Test {
 protected:
  WeheTest() : net_{sim_} {
    client_ = &net_.add_host("client", make_addr(10, 0, 0, 2));
    server_ = &net_.add_host("server", kServerAddr);
    link_ = &net_.connect(client_->uplink(), server_->uplink(),
                          sim::Network::symmetric(DataRate::mbps(50), 20_ms));
    wehe_server_ = std::make_unique<WeheServer>(*server_);
  }

  sim::Simulator sim_{56};
  sim::Network net_{sim_};
  sim::Host* client_ = nullptr;
  sim::Host* server_ = nullptr;
  sim::Link* link_ = nullptr;
  std::unique_ptr<WeheServer> wehe_server_;
};

TEST_F(WeheTest, NoDifferentiationOnNeutralPath) {
  WeheClient::Config cfg;
  cfg.server = kServerAddr;
  cfg.repetitions = 4;
  WeheClient client{*client_, cfg};
  WeheClient::Report report;
  bool done = false;
  client.on_complete = [&](const WeheClient::Report& r) {
    report = r;
    done = true;
  };
  client.start();
  sim_.run_until(TimePoint::epoch() + Duration::minutes(10));
  ASSERT_TRUE(done);
  EXPECT_FALSE(report.differentiation_detected);
  EXPECT_NEAR(report.mean_original_mbps, 8.0, 0.8);
  EXPECT_NEAR(report.mean_randomized_mbps, 8.0, 0.8);
}

TEST_F(WeheTest, DetectsPolicerThrottlingClassifiedTraffic) {
  DscpPolicer policer{DscpPolicer::Config{
      .match_dscp = static_cast<std::uint8_t>(ContentMarker::kVideoStreaming),
      .limit = DataRate::mbps(3),
      .bucket_bytes = 32 * 1024}};
  link_->set_loss(1, &policer);  // server -> client direction

  WeheClient::Config cfg;
  cfg.server = kServerAddr;
  cfg.repetitions = 4;
  WeheClient client{*client_, cfg};
  WeheClient::Report report;
  bool done = false;
  client.on_complete = [&](const WeheClient::Report& r) {
    report = r;
    done = true;
  };
  client.start();
  sim_.run_until(TimePoint::epoch() + Duration::minutes(10));
  ASSERT_TRUE(done);
  EXPECT_TRUE(report.differentiation_detected);
  EXPECT_LT(report.mean_original_mbps, report.mean_randomized_mbps);
  EXPECT_GT(policer.dropped(), 0u);
}

TEST(DscpPolicer, PassesUnmarkedTraffic) {
  DscpPolicer policer{DscpPolicer::Config{.match_dscp = 10, .limit = DataRate::kbps(1)}};
  sim::Packet pkt;
  pkt.size_bytes = 1500;
  pkt.dscp = 0;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(policer.should_drop(TimePoint::epoch() + Duration::millis(i), pkt));
  }
  EXPECT_EQ(policer.dropped(), 0u);
}

TEST(DscpPolicer, EnforcesTokenBucketRate) {
  DscpPolicer policer{DscpPolicer::Config{
      .match_dscp = 10, .limit = DataRate::mbps(1), .bucket_bytes = 2000}};
  sim::Packet pkt;
  pkt.size_bytes = 1000;
  pkt.dscp = 10;
  int passed = 0;
  // 1000 packets over 10 seconds = 0.8 Mbit/s offered... offered rate is
  // 100 pkt/s x 8000 bits = 0.8 Mbit/s, below the limit: all pass.
  for (int i = 0; i < 1000; ++i) {
    if (!policer.should_drop(TimePoint::epoch() + Duration::millis(10 * i), pkt)) ++passed;
  }
  EXPECT_EQ(passed, 1000);
  // Now a burst at t=20s far above the bucket: only bucket+refill passes.
  int burst_passed = 0;
  for (int i = 0; i < 100; ++i) {
    if (!policer.should_drop(TimePoint::epoch() + Duration::seconds(20), pkt)) ++burst_passed;
  }
  EXPECT_LE(burst_passed, 3);
}

}  // namespace
}  // namespace slp::mbox
