// provenance_test.cpp — acceptance suite for the latency-provenance layer.
//
// The contract under test (ISSUE: "Latency provenance"):
//   * exactness — every delivered probe's per-component nanosecond sums
//     telescope to EXACTLY the measured RTT (EXPECT_EQ on int64, no epsilon),
//     on a plain wired path, across the Starlink access with its handover
//     slots, and across fast-path materialization boundaries;
//   * invariance — the merged breakdown/flight exports are byte-identical
//     for any --jobs value and for --fast-forward=0|1;
//   * attribution — TCP retransmissions surface as the loss_recovery
//     component; unattributed residual ("other") never appears, because a
//     nonzero residual is exactly what an accounting bug would produce.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "apps/ping.hpp"
#include "measure/campaign.hpp"
#include "measure/testbed.hpp"
#include "obs/breakdown.hpp"
#include "obs/recorder.hpp"
#include "phy/gilbert_elliott.hpp"
#include "runner/sweep.hpp"
#include "sim/network.hpp"
#include "sim/provenance.hpp"
#include "tcp/tcp.hpp"

namespace slp {
namespace {

using namespace slp::literals;
using sim::make_addr;

std::int64_t comp_sum(const apps::PingApp::Probe& probe) {
  std::int64_t sum = 0;
  for (const std::int64_t v : probe.comp_ns) sum += v;
  return sum;
}

/// Comparable fingerprint of one probe (loss flag, exact RTT, every
/// component) for cross-mode equality checks.
using ProbeFacts = std::tuple<bool, std::int64_t, std::vector<std::int64_t>>;

ProbeFacts facts(const apps::PingApp::Probe& probe) {
  return {probe.lost, probe.rtt.ns(),
          std::vector<std::int64_t>{probe.comp_ns, probe.comp_ns + obs::kTagComponents}};
}

bool has_component(const obs::Snapshot& snap, int component) {
  return snap.breakdown_components.groups().count(static_cast<std::uint64_t>(component)) > 0;
}

// ------------------------------------------------------------ wired exactness

struct WiredPingRun {
  std::vector<apps::PingApp::Probe> probes;
  obs::Snapshot snap;
};

WiredPingRun run_wired_ping(bool fast_forward) {
  sim::Simulator simulator{11};
  simulator.set_fast_forward(fast_forward);
  obs::Options opts;
  opts.provenance = true;
  simulator.enable_obs(opts);
  sim::Network net{simulator};
  sim::Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
  sim::Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
  net.connect(a.uplink(), b.uplink(),
              sim::Network::symmetric(DataRate::mbps(20), 10_ms, 256 * 1024));
  apps::PingApp::Config cfg;
  cfg.target = b.addr();
  cfg.count = 10;
  cfg.interval = Duration::from_millis(200);
  cfg.flow = 7;
  apps::PingApp ping{a, cfg};
  WiredPingRun out;
  ping.on_complete = [&out](const std::vector<apps::PingApp::Probe>& r) { out.probes = r; };
  ping.start();
  simulator.run();
  out.snap = simulator.obs()->take_snapshot();
  return out;
}

TEST(Provenance, WiredPingComponentsSumToRttExactly) {
  for (const bool ff : {true, false}) {
    const WiredPingRun run = run_wired_ping(ff);
    ASSERT_EQ(run.probes.size(), 10u) << "ff=" << ff;
    for (const auto& probe : run.probes) {
      ASSERT_FALSE(probe.lost);
      // The whole point: int64 equality, not near.
      EXPECT_EQ(comp_sum(probe), probe.rtt.ns()) << "ff=" << ff << " seq=" << probe.seq;
      EXPECT_GT(probe.comp_ns[obs::kPropagation], 0);
      EXPECT_GT(probe.comp_ns[obs::kSerialize], 0);
      EXPECT_EQ(probe.comp_ns[obs::kLossRecovery], 0);  // ICMP never retransmits
    }
    // Exact attribution leaves no residual: the sink-side "other" component
    // is value-driven and must never materialize.
    EXPECT_FALSE(has_component(run.snap, obs::kOther)) << "ff=" << ff;
    EXPECT_TRUE(has_component(run.snap, obs::kMeasured)) << "ff=" << ff;
    // The flow key requested by the app shows up in the per-flow view.
    EXPECT_EQ(run.snap.breakdown_flows.groups().count(obs::breakdown_key(7, obs::kMeasured)),
              1u)
        << "ff=" << ff;
  }
  // The analytic fast path synthesizes the identical decomposition.
  const WiredPingRun fast = run_wired_ping(true);
  const WiredPingRun ref = run_wired_ping(false);
  ASSERT_EQ(fast.probes.size(), ref.probes.size());
  for (std::size_t i = 0; i < fast.probes.size(); ++i) {
    EXPECT_EQ(facts(fast.probes[i]), facts(ref.probes[i])) << "probe " << i;
  }
  EXPECT_EQ(obs::breakdown_json(fast.snap), obs::breakdown_json(ref.snap));
}

// --------------------------------------------------------- Starlink exactness

std::vector<apps::PingApp::Probe> run_starlink_ping(bool fast_forward) {
  measure::TestbedConfig config;
  config.seed = 5;
  config.obs.provenance = true;
  config.fast_forward = fast_forward;
  measure::Testbed tb{config};
  apps::PingApp::Config cfg;
  cfg.target = tb.anchor(0).host->addr();
  cfg.count = 40;
  cfg.interval = Duration::seconds(2);  // 80 s: crosses several 15 s slots
  cfg.flow = 1;
  apps::PingApp ping{tb.client(measure::AccessKind::kStarlink), cfg};
  std::vector<apps::PingApp::Probe> probes;
  ping.on_complete = [&probes](const std::vector<apps::PingApp::Probe>& r) { probes = r; };
  ping.start();
  tb.run_for(Duration::minutes(3));
  return probes;
}

TEST(Provenance, StarlinkPingStaysExactAcrossHandoverSlots) {
  const auto fast = run_starlink_ping(true);
  const auto ref = run_starlink_ping(false);
  ASSERT_EQ(fast.size(), 40u);
  ASSERT_EQ(ref.size(), 40u);
  int delivered = 0;
  bool saw_stall = false;
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(facts(fast[i]), facts(ref[i])) << "probe " << i;
    if (fast[i].lost) continue;
    ++delivered;
    EXPECT_EQ(comp_sum(fast[i]), fast[i].rtt.ns()) << "probe " << i;
    EXPECT_GT(fast[i].comp_ns[obs::kPropagation], 0);
    EXPECT_GT(fast[i].comp_ns[obs::kAccessProc], 0);
    saw_stall |= fast[i].comp_ns[obs::kHandoverStall] > 0;
  }
  // Clear sky: the vast majority of probes complete, and 80 s of probing
  // at the paper's 15 s slot cadence hits at least one slot penalty.
  EXPECT_GE(delivered, 30);
  EXPECT_TRUE(saw_stall);
}

// ---------------------------------------------- materialization boundaries

obs::Snapshot run_retuned_tcp(bool fast_forward) {
  sim::Simulator simulator{404};
  simulator.set_fast_forward(fast_forward);
  obs::Options opts;
  opts.provenance = true;
  opts.metrics = true;
  simulator.enable_obs(opts);
  sim::Network net{simulator};
  sim::Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
  sim::Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
  sim::Link& link = net.connect(
      a.uplink(), b.uplink(),
      sim::Network::symmetric(DataRate::mbps(20), 10_ms, 256 * 1024));
  tcp::TcpStack sa{a};
  tcp::TcpStack sb{b};
  sb.listen(80, [](tcp::TcpConnection& c) { c.on_data = [](std::uint64_t) {}; });
  tcp::TcpConnection& conn = sa.connect(b.addr(), 80);
  conn.on_established = [&conn] { conn.send(4'000'000); };
  // Handover-style delay retunes land mid-epoch: the analytic direction
  // materializes mid-serialization, pulls committed arrivals back onto the
  // event path, and the synthesized components must still telescope exactly.
  simulator.schedule_in(Duration::millis(700), [&link] {
    link.set_delay(0, 25_ms);
    link.set_delay(1, 25_ms);
  });
  simulator.schedule_in(Duration::millis(1500), [&link] {
    link.set_delay(0, 10_ms);
    link.set_delay(1, 10_ms);
  });
  simulator.run_until(TimePoint::epoch() + Duration::minutes(5));
  simulator.run();
  return simulator.obs()->take_snapshot();
}

TEST(Provenance, MaterializationBoundaryKeepsAttributionExact) {
  const obs::Snapshot fast = run_retuned_tcp(true);
  const obs::Snapshot ref = run_retuned_tcp(false);
  // Positive control: the retunes really did cross materialization
  // boundaries (satellite: the fast-forward introspection counter).
  ASSERT_NE(fast.counters.find("sim.ff.materializations"), fast.counters.end());
  EXPECT_GE(fast.counters.at("sim.ff.materializations"), 2u);
  // With --fast-forward=0 the counter cell exists (binding creates it) but
  // never increments: the reference path has nothing to materialize.
  EXPECT_EQ(ref.counters.at("sim.ff.materializations"), 0u);
  EXPECT_EQ(fast.gauges.at("link.other.ab.fast_path_active"), 1.0);  // drained: re-engaged
  // Exactness across the boundary: no residual in either mode, and the
  // breakdown documents are byte-identical.
  EXPECT_FALSE(has_component(fast, obs::kOther));
  EXPECT_FALSE(has_component(ref, obs::kOther));
  EXPECT_TRUE(has_component(fast, obs::kMeasured));
  EXPECT_EQ(obs::breakdown_json(fast), obs::breakdown_json(ref));
}

// ------------------------------------------------------------ loss recovery

TEST(Provenance, TcpRetransmissionsSurfaceAsLossRecovery) {
  sim::Simulator simulator{88};
  obs::Options opts;
  opts.provenance = true;
  simulator.enable_obs(opts);
  sim::Network net{simulator};
  sim::Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
  sim::Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
  sim::Link& link = net.connect(a.uplink(), b.uplink(),
                                sim::Network::symmetric(DataRate::mbps(30), 20_ms));
  phy::GilbertElliott ge{{.mean_good = 500_ms, .mean_bad = 40_ms, .loss_bad = 0.6}, Rng{5}};
  link.set_loss(0, &ge);
  tcp::TcpStack sa{a};
  tcp::TcpStack sb{b};
  sb.listen(80, [](tcp::TcpConnection& c) { c.on_data = [](std::uint64_t) {}; });
  tcp::TcpConnection& conn = sa.connect(b.addr(), 80);
  conn.on_established = [&conn] { conn.send(2'000'000); };
  simulator.run_until(TimePoint::epoch() + Duration::minutes(5));
  const obs::Snapshot snap = simulator.obs()->take_snapshot();
  ASSERT_GT(conn.stats().retransmissions, 0u);  // the path was actually lossy
  ASSERT_TRUE(has_component(snap, obs::kLossRecovery));
  const auto& recovery =
      snap.breakdown_components.groups().at(static_cast<std::uint64_t>(obs::kLossRecovery));
  EXPECT_GT(recovery.summary.count(), 0u);
  EXPECT_GT(recovery.summary.sum(), 0.0);
  // Even under retransmission the per-traversal accounting stays exact:
  // recovery is carried as its own component, never as residual.
  EXPECT_FALSE(has_component(snap, obs::kOther));
}

// ----------------------------------------------------- campaign invariance

TEST(Provenance, CampaignBreakdownExportIsByteIdenticalAcrossJobsAndFastForward) {
  measure::PingCampaign::Config config;
  config.duration = Duration::hours(2);
  config.cadence = Duration::minutes(10);
  for (const int seeds : {1, 2}) {
    std::string breakdown_baseline;
    std::string flight_baseline;
    bool have_baseline = false;
    for (const int jobs : {1, 2}) {
      for (const bool ff : {true, false}) {
        config.obs = obs::Options{};
        config.obs.provenance = true;
        config.fast_forward = ff;
        const auto result = runner::run_merged<measure::PingCampaign>({seeds, jobs}, config);
        const std::string breakdown = obs::breakdown_json(result.obs);
        const std::string flights = obs::flight_json(result.obs);
        EXPECT_NE(breakdown.find("\"propagation\""), std::string::npos);
        if (!have_baseline) {
          breakdown_baseline = breakdown;
          flight_baseline = flights;
          have_baseline = true;
          continue;
        }
        EXPECT_EQ(breakdown, breakdown_baseline)
            << "breakdown diverged at seeds=" << seeds << " jobs=" << jobs << " ff=" << ff;
        EXPECT_EQ(flights, flight_baseline)
            << "flights diverged at seeds=" << seeds << " jobs=" << jobs << " ff=" << ff;
      }
    }
  }
}

}  // namespace
}  // namespace slp
