#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "phy/outage.hpp"
#include "quic/quic.hpp"
#include "sim/network.hpp"

namespace slp::quic {
namespace {

using namespace slp::literals;
using sim::make_addr;

constexpr sim::Ipv4Addr kClientAddr = make_addr(10, 0, 0, 2);
constexpr sim::Ipv4Addr kServerAddr = make_addr(203, 0, 113, 10);

class QuicLinkTest : public ::testing::Test {
 protected:
  void build(DataRate rate, Duration one_way_delay, std::size_t queue_bytes = 512 * 1024) {
    client_host_ = &net_.add_host("client", kClientAddr);
    server_host_ = &net_.add_host("server", kServerAddr);
    link_ = &net_.connect(client_host_->uplink(), server_host_->uplink(),
                          sim::Network::symmetric(rate, one_way_delay, queue_bytes));
    client_ = std::make_unique<QuicStack>(*client_host_);
    server_ = std::make_unique<QuicStack>(*server_host_);
  }

  sim::Simulator sim_{11};
  sim::Network net_{sim_};
  sim::Host* client_host_ = nullptr;
  sim::Host* server_host_ = nullptr;
  sim::Link* link_ = nullptr;
  std::unique_ptr<QuicStack> client_;
  std::unique_ptr<QuicStack> server_;
};

TEST_F(QuicLinkTest, HandshakeTakesOneRtt) {
  build(DataRate::mbps(100), 20_ms);
  TimePoint client_up;
  bool server_up = false;
  server_->listen(443, [&](QuicConnection& c) {
    c.on_established = [&] { server_up = true; };
  });
  QuicConnection& conn = client_->connect(kServerAddr, 443);
  conn.on_established = [&] { client_up = sim_.now(); };
  sim_.run();
  EXPECT_TRUE(server_up);
  EXPECT_TRUE(conn.established());
  EXPECT_GE(client_up - TimePoint::epoch(), 40_ms);
  EXPECT_LT(client_up - TimePoint::epoch(), 42_ms);
}

TEST_F(QuicLinkTest, BulkStreamDeliversExactly) {
  build(DataRate::mbps(100), 10_ms, 1024 * 1024);
  std::uint64_t got = 0;
  server_->listen(443, [&](QuicConnection& c) {
    c.on_stream_data = [&](std::uint64_t n) { got += n; };
  });
  QuicConnection& conn = client_->connect(kServerAddr, 443);
  conn.on_established = [&conn] { conn.send_stream(5'000'000); };
  sim_.run();
  EXPECT_EQ(got, 5'000'000u);
  EXPECT_EQ(conn.bytes_in_flight(), 0u);
}

TEST_F(QuicLinkTest, PacketNumbersMonotoneNoGapsAtSender) {
  build(DataRate::mbps(50), 10_ms);
  std::vector<std::uint64_t> sent_pns;
  server_->listen(443, [](QuicConnection&) {});
  QuicConnection& conn = client_->connect(kServerAddr, 443);
  conn.hooks.on_packet_sent = [&](std::uint64_t pn, TimePoint, std::uint32_t) {
    sent_pns.push_back(pn);
  };
  conn.on_established = [&conn] { conn.send_stream(1'000'000); };
  sim_.run();
  ASSERT_GT(sent_pns.size(), 10u);
  // quiche property: each data/handshake pn used once, increasing. (Ack-only
  // pns interleave but are not hooked; so the sequence is strictly
  // increasing, not necessarily dense.)
  for (std::size_t i = 1; i < sent_pns.size(); ++i) {
    EXPECT_GT(sent_pns[i], sent_pns[i - 1]);
  }
}

TEST_F(QuicLinkTest, ReceiverSeesLossAsPnGap) {
  build(DataRate::mbps(50), 10_ms);
  // Drop exactly one data packet mid-transfer.
  class DropNth final : public sim::LossModel {
   public:
    bool should_drop(TimePoint, const sim::Packet& pkt) override {
      if (pkt.size_bytes < 1000) return false;  // spare handshake/acks? no: handshake is 1200
      return ++count_ == 40;
    }
    int count_ = 0;
  };
  DropNth drop;
  link_->set_loss(0, &drop);
  std::vector<std::uint64_t> received_pns;
  std::uint64_t got = 0;
  server_->listen(443, [&](QuicConnection& c) {
    c.hooks.on_packet_received = [&](std::uint64_t pn, TimePoint) { received_pns.push_back(pn); };
    c.on_stream_data = [&](std::uint64_t n) { got += n; };
  });
  QuicConnection& conn = client_->connect(kServerAddr, 443);
  conn.on_established = [&conn] { conn.send_stream(1'000'000); };
  sim_.run();
  EXPECT_EQ(got, 1'000'000u);
  EXPECT_EQ(conn.stats().packets_lost, 1u);
  // The receiver observes exactly one missing pn among data packets.
  std::set<std::uint64_t> seen(received_pns.begin(), received_pns.end());
  std::uint64_t missing = 0;
  for (std::uint64_t pn = 0; pn <= *seen.rbegin(); ++pn) {
    if (!seen.contains(pn)) ++missing;
  }
  EXPECT_EQ(missing, 1u);
}

TEST_F(QuicLinkTest, RetransmissionUsesNewPacketNumber) {
  build(DataRate::mbps(50), 10_ms);
  class DropNth final : public sim::LossModel {
   public:
    bool should_drop(TimePoint, const sim::Packet&) override { return ++count_ == 30; }
    int count_ = 0;
  };
  DropNth drop;
  link_->set_loss(0, &drop);
  std::uint64_t lost_pn = ~0ull;
  std::vector<std::uint64_t> sent_after_loss;
  server_->listen(443, [](QuicConnection&) {});
  QuicConnection& conn = client_->connect(kServerAddr, 443);
  conn.hooks.on_packet_lost = [&](std::uint64_t pn) { lost_pn = pn; };
  conn.hooks.on_packet_sent = [&](std::uint64_t pn, TimePoint, std::uint32_t) {
    if (lost_pn != ~0ull) sent_after_loss.push_back(pn);
  };
  std::uint64_t got = 0;
  conn.on_established = [&conn] { conn.send_stream(500'000); };
  sim_.run();
  ASSERT_NE(lost_pn, ~0ull);
  ASSERT_FALSE(sent_after_loss.empty());
  for (const std::uint64_t pn : sent_after_loss) EXPECT_GT(pn, lost_pn);
  (void)got;
}

TEST_F(QuicLinkTest, ThroughputApproachesLinkRate) {
  build(DataRate::mbps(100), 15_ms, 1024 * 1024);
  std::uint64_t got = 0;
  TimePoint done;
  server_->listen(443, [&](QuicConnection& c) {
    c.on_stream_data = [&](std::uint64_t n) {
      got += n;
      done = sim_.now();
    };
  });
  QuicConnection& conn = client_->connect(kServerAddr, 443);
  conn.on_established = [&conn] { conn.send_stream(30'000'000); };
  sim_.run();
  ASSERT_EQ(got, 30'000'000u);
  const double mbps = got * 8.0 / (done - TimePoint::epoch()).to_seconds() / 1e6;
  EXPECT_GT(mbps, 75.0);
  EXPECT_LE(mbps, 100.0);
}

TEST_F(QuicLinkTest, SurvivesRandomLossAndDeliversAll) {
  build(DataRate::mbps(50), 20_ms);
  phy::BernoulliLoss loss{0.02, Rng{5}};
  link_->set_loss(0, &loss);
  std::uint64_t got = 0;
  server_->listen(443, [&](QuicConnection& c) {
    c.on_stream_data = [&](std::uint64_t n) { got += n; };
  });
  QuicConnection& conn = client_->connect(kServerAddr, 443);
  conn.on_established = [&conn] { conn.send_stream(5'000'000); };
  sim_.run();
  EXPECT_EQ(got, 5'000'000u);
  EXPECT_GT(conn.stats().packets_lost, 0u);
}

TEST_F(QuicLinkTest, FlowControlLimitsUnackedData) {
  build(DataRate::mbps(1000), 100_ms, 64 * 1024 * 1024);
  QuicConfig config;
  config.initial_max_data = 1'000'000;
  config.autotune_flow_control = false;
  std::uint64_t got = 0;
  server_->listen(443, [&](QuicConnection& c) {
    c.on_stream_data = [&](std::uint64_t n) { got += n; };
  }, config);
  QuicConnection& conn = client_->connect(kServerAddr, 443, config);
  conn.on_established = [&conn] { conn.send_stream(50'000'000); };
  // BDP is 25MB but the window is fixed at 1MB: throughput is capped near
  // window/RTT = 40 Mbit/s on a 1 Gbit/s link (early on, slow start caps it
  // further).
  sim_.run_until(TimePoint::epoch() + 1_s);
  EXPECT_LE(got, 5'000'000u);  // hard-limited by the 1MB window per RTT
  EXPECT_GT(got, 100'000u);
  // At window/RTT = 5 MB/s the remaining ~49MB takes ~10 more seconds; a
  // non-window-limited transfer on this 1 Gbit/s link would take < 1 s.
  sim_.run_until(TimePoint::epoch() + 6_s);
  EXPECT_LT(got, 35'000'000u);
  sim_.run_until(TimePoint::epoch() + 60_s);
  EXPECT_EQ(got, 50'000'000u);
}

TEST_F(QuicLinkTest, AutotuneOpensFlowWindow) {
  build(DataRate::mbps(200), 50_ms, 8 * 1024 * 1024);
  QuicConfig config;
  config.initial_max_data = 1'000'000;
  std::uint64_t got = 0;
  TimePoint done;
  QuicConnection* server_conn = nullptr;
  server_->listen(443, [&](QuicConnection& c) {
    server_conn = &c;
    c.on_stream_data = [&](std::uint64_t n) {
      got += n;
      done = sim_.now();
    };
  }, config);
  QuicConnection& conn = client_->connect(kServerAddr, 443, config);
  conn.on_established = [&conn] { conn.send_stream(50'000'000); };
  sim_.run();
  ASSERT_EQ(got, 50'000'000u);
  ASSERT_NE(server_conn, nullptr);
  EXPECT_GT(server_conn->flow_window(), 1'000'000u);
  const double mbps = got * 8.0 / (done - TimePoint::epoch()).to_seconds() / 1e6;
  EXPECT_GT(mbps, 100.0);  // autotuning must not leave the link half-idle
}

TEST_F(QuicLinkTest, MessagesDeliveredCompletelyAndInOrderOfCompletion) {
  build(DataRate::mbps(20), 25_ms);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> delivered;  // id, size
  server_->listen(443, [&](QuicConnection& c) {
    c.on_message = [&](std::uint64_t id, std::uint64_t bytes, TimePoint) {
      delivered.emplace_back(id, bytes);
    };
  });
  QuicConnection& conn = client_->connect(kServerAddr, 443);
  conn.on_established = [&] {
    conn.send_message(5'000);
    conn.send_message(25'000);
    conn.send_message(12'000);
  };
  sim_.run();
  ASSERT_EQ(delivered.size(), 3u);
  EXPECT_EQ(delivered[0], (std::pair<std::uint64_t, std::uint64_t>{0, 5'000}));
  EXPECT_EQ(delivered[1], (std::pair<std::uint64_t, std::uint64_t>{1, 25'000}));
  EXPECT_EQ(delivered[2], (std::pair<std::uint64_t, std::uint64_t>{2, 12'000}));
}

TEST_F(QuicLinkTest, MessagesSurviveLoss) {
  build(DataRate::mbps(20), 25_ms);
  phy::BernoulliLoss loss{0.05, Rng{6}};
  link_->set_loss(0, &loss);
  int delivered = 0;
  server_->listen(443, [&](QuicConnection& c) {
    c.on_message = [&](std::uint64_t, std::uint64_t, TimePoint) { ++delivered; };
  });
  QuicConnection& conn = client_->connect(kServerAddr, 443);
  conn.on_established = [&] {
    for (int i = 0; i < 100; ++i) {
      sim_.schedule_in(Duration::millis(40 * i), [&conn, i] {
        conn.send_message(5'000 + 200ull * static_cast<std::uint64_t>(i));
      });
    }
  };
  sim_.run();
  EXPECT_EQ(delivered, 100);
}

TEST_F(QuicLinkTest, MessageLatencyIncludesQueueing) {
  // Without pacing, a 25kB message bursts into the uplink at line rate: the
  // last packet queues behind the first ones (the paper's explanation of the
  // upload RTT inflation).
  build(DataRate::mbps(10), 25_ms);
  std::vector<double> latencies_ms;
  server_->listen(443, [&](QuicConnection& c) {
    c.on_message = [&](std::uint64_t, std::uint64_t, TimePoint queued_at) {
      latencies_ms.push_back((sim_.now() - queued_at).to_millis());
    };
  });
  QuicConnection& conn = client_->connect(kServerAddr, 443);
  conn.on_established = [&] {
    conn.send_message(25'000);  // ~19 packets, 20ms serialization at 10 Mbit/s
  };
  sim_.run();
  ASSERT_EQ(latencies_ms.size(), 1u);
  // One-way: 25ms propagation + ~21ms serialization of the burst, plus the
  // initial cwnd (10 packets) holding back the tail for part of an RTT.
  EXPECT_GT(latencies_ms[0], 46.0);
  EXPECT_LT(latencies_ms[0], 110.0);
}

TEST_F(QuicLinkTest, PacingSpreadsBurst) {
  // Same message, pacing on: packets release over ~a cwnd/srtt schedule.
  build(DataRate::mbps(10), 25_ms);
  QuicConfig paced;
  paced.pacing = true;
  std::vector<TimePoint> sent_times;
  server_->listen(443, [](QuicConnection&) {});
  QuicConnection& conn = client_->connect(kServerAddr, 443, paced);
  conn.hooks.on_packet_sent = [&](std::uint64_t, TimePoint at, std::uint32_t) {
    sent_times.push_back(at);
  };
  // Prime the RTT estimate with a small message first.
  conn.on_established = [&] {
    conn.send_message(2'000);
    sim_.schedule_in(500_ms, [&conn] { conn.send_message(25'000); });
  };
  sim_.run();
  // Find the send burst after t=500ms and check it is spread out.
  std::vector<TimePoint> burst;
  for (const TimePoint t : sent_times) {
    if (t >= TimePoint::epoch() + 500_ms) burst.push_back(t);
  }
  ASSERT_GE(burst.size(), 10u);
  const Duration spread = burst.back() - burst.front();
  EXPECT_GT(spread, 5_ms);  // unpaced would be ~0 (single event burst)
}

TEST_F(QuicLinkTest, RttSamplesTrackPathRtt) {
  build(DataRate::mbps(100), 30_ms);
  std::vector<double> rtts;
  server_->listen(443, [](QuicConnection&) {});
  QuicConnection& conn = client_->connect(kServerAddr, 443);
  conn.hooks.on_packet_acked = [&](std::uint64_t, Duration rtt) {
    rtts.push_back(rtt.to_millis());
  };
  conn.on_established = [&conn] { conn.send_stream(2'000'000); };
  sim_.run();
  ASSERT_GT(rtts.size(), 100u);
  for (const double r : rtts) {
    EXPECT_GE(r, 60.0);
    EXPECT_LT(r, 200.0);  // 100Mbit/s: little queueing
  }
  EXPECT_GT(conn.srtt().to_millis(), 59.0);
}

TEST_F(QuicLinkTest, UploadDirectionWorks) {
  // Client sends the bulk (H3 upload scenario).
  build(DataRate::mbps(20), 25_ms);
  std::uint64_t server_got = 0;
  server_->listen(443, [&](QuicConnection& c) {
    c.on_stream_data = [&](std::uint64_t n) { server_got += n; };
  });
  QuicConnection& conn = client_->connect(kServerAddr, 443);
  conn.on_established = [&conn] { conn.send_stream(10'000'000); };
  sim_.run();
  EXPECT_EQ(server_got, 10'000'000u);
}

TEST_F(QuicLinkTest, ServerCanSendBulkToClient) {
  // Download scenario: client "requests", server streams 10MB back.
  build(DataRate::mbps(100), 25_ms, 1024 * 1024);
  std::uint64_t client_got = 0;
  server_->listen(443, [&](QuicConnection& c) {
    c.on_stream_data = [&c](std::uint64_t) { c.send_stream(10'000'000); };
  });
  QuicConnection& conn = client_->connect(kServerAddr, 443);
  conn.on_stream_data = [&](std::uint64_t n) { client_got += n; };
  conn.on_established = [&conn] { conn.send_stream(300); };  // the request
  sim_.run();
  EXPECT_EQ(client_got, 10'000'000u);
}

TEST_F(QuicLinkTest, OutageTriggersPtoAndRecovers) {
  build(DataRate::mbps(50), 10_ms);
  class WindowDrop final : public sim::LossModel {
   public:
    bool should_drop(TimePoint now, const sim::Packet&) override {
      return now >= TimePoint::epoch() + 200_ms && now < TimePoint::epoch() + 1500_ms;
    }
  };
  WindowDrop drop;
  link_->set_loss(0, &drop);
  link_->set_loss(1, &drop);
  std::uint64_t got = 0;
  server_->listen(443, [&](QuicConnection& c) {
    c.on_stream_data = [&](std::uint64_t n) { got += n; };
  });
  QuicConnection& conn = client_->connect(kServerAddr, 443);
  conn.on_established = [&conn] { conn.send_stream(5'000'000); };
  sim_.run();
  EXPECT_EQ(got, 5'000'000u);
  EXPECT_GT(conn.stats().ptos, 0u);
}

TEST_F(QuicLinkTest, DatagramsDeliverWithCookies) {
  build(DataRate::mbps(50), 10_ms);
  std::vector<std::uint64_t> cookies;
  std::uint64_t bytes_seen = 0;
  server_->listen(443, [&](QuicConnection& c) {
    c.on_dgram = [&](std::uint64_t, std::uint64_t cookie, std::uint32_t bytes, TimePoint) {
      cookies.push_back(cookie);
      bytes_seen += bytes;
    };
  });
  QuicConnection& conn = client_->connect(kServerAddr, 443);
  conn.on_established = [&conn] {
    for (std::uint64_t i = 0; i < 10; ++i) conn.send_datagram(900, /*cookie=*/100 + i);
  };
  sim_.run();
  EXPECT_EQ(conn.stats().datagrams_sent, 10u);
  ASSERT_EQ(cookies.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(cookies[i], 100 + i);
  EXPECT_EQ(bytes_seen, 9'000u);
  EXPECT_EQ(conn.stats().datagrams_lost, 0u);
}

TEST_F(QuicLinkTest, DatagramLossIsNotRetransmitted) {
  build(DataRate::mbps(50), 10_ms);
  // Drop exactly one datagram-bearing packet (handshakes are 1200B; the
  // datagrams below ride ~942B packets).
  class DropNthSmall final : public sim::LossModel {
   public:
    bool should_drop(TimePoint, const sim::Packet& pkt) override {
      if (pkt.size_bytes >= 1000 || pkt.size_bytes < 500) return false;
      return ++count_ == 5;
    }
    int count_ = 0;
  };
  DropNthSmall drop;
  link_->set_loss(0, &drop);
  std::vector<std::uint64_t> delivered;
  std::vector<std::uint64_t> dropped;
  QuicConnection* server_conn = nullptr;
  server_->listen(443, [&](QuicConnection& c) {
    server_conn = &c;
    c.on_dgram = [&](std::uint64_t, std::uint64_t cookie, std::uint32_t, TimePoint) {
      delivered.push_back(cookie);
    };
  });
  QuicConnection& conn = client_->connect(kServerAddr, 443);
  conn.on_dgram_lost = [&](std::uint64_t, std::uint64_t cookie) { dropped.push_back(cookie); };
  conn.on_established = [&conn] {
    // Pace one datagram per 5 ms so each rides its own packet; the stream of
    // later packets lets packet-threshold loss detection declare the gap.
    for (std::uint64_t i = 0; i < 20; ++i) {
      conn.sim().schedule_in(Duration::millis(5 * static_cast<std::int64_t>(i)),
                             [&conn, i] { conn.send_datagram(900, /*cookie=*/i); });
    }
  };
  sim_.run();
  EXPECT_EQ(conn.stats().datagrams_sent, 20u);
  // Exactly one copy was dropped on the wire, declared lost at the sender,
  // and NEVER retransmitted: 19 distinct cookies arrive, the dropped cookie
  // never does, and no cookie arrives twice.
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(conn.stats().datagrams_lost, 1u);
  ASSERT_NE(server_conn, nullptr);
  EXPECT_EQ(server_conn->stats().datagrams_delivered, 19u);
  ASSERT_EQ(delivered.size(), 19u);
  std::set<std::uint64_t> unique(delivered.begin(), delivered.end());
  EXPECT_EQ(unique.size(), 19u) << "a datagram was delivered twice (retransmitted?)";
  EXPECT_FALSE(unique.contains(dropped[0])) << "lost datagram was retransmitted";
  // The reliable-path counters stay untouched: the loss did not enqueue any
  // retransmission content.
  EXPECT_EQ(conn.stats().messages_delivered, 0u);
}

TEST_F(QuicLinkTest, DatagramOversizeClampsToSinglePacket) {
  build(DataRate::mbps(50), 10_ms);
  std::uint32_t seen = 0;
  server_->listen(443, [&](QuicConnection& c) {
    c.on_dgram = [&](std::uint64_t, std::uint64_t, std::uint32_t bytes, TimePoint) {
      seen = bytes;
    };
  });
  QuicConnection& conn = client_->connect(kServerAddr, 443);
  conn.on_established = [&conn] { conn.send_datagram(50'000); };
  sim_.run();
  EXPECT_EQ(seen, 1350u);  // clamped to max_payload, delivered whole
}

}  // namespace
}  // namespace slp::quic
