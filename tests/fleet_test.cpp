// fleet_test — the multi-terminal fleet subsystem (src/fleet/).
//
// Covers the four layers and their contracts: Placement (seed-derived,
// deterministic, cell-grouped), DemandModel (pure counter-based function of
// (seed, t)), CellArbiter (weighted proportional-fair invariants: work
// conservation, weight monotonicity, no starvation; epoch accounting;
// load-surge override composition), and the Fleet/FleetCampaign integration
// (size-1 fallback bit-identity to the legacy LoadProcess path, the fig5
// speedtest pin, queue-drain termination under packet campaigns, and
// --jobs invariance of the merged campaign).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "fleet/campaign.hpp"
#include "fleet/cell_arbiter.hpp"
#include "fleet/demand.hpp"
#include "fleet/fleet.hpp"
#include "fleet/placement.hpp"
#include "leo/access.hpp"
#include "measure/campaign.hpp"
#include "runner/sweep.hpp"
#include "scenario/scenario.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace slp::fleet {
namespace {

TimePoint at(double seconds) {
  return TimePoint::epoch() + Duration::seconds(seconds);
}

// ------------------------------------------------------------- placement

TEST(Placement, DeterministicPerSeedAndConfig) {
  Placement::Config config;
  config.terminals = 400;
  const Placement a = Placement::generate(config, Rng{123}.fork("fleet/placement"));
  const Placement b = Placement::generate(config, Rng{123}.fork("fleet/placement"));
  ASSERT_EQ(a.terminals().size(), 400u);
  ASSERT_EQ(b.terminals().size(), 400u);
  for (std::size_t i = 0; i < a.terminals().size(); ++i) {
    EXPECT_EQ(a.terminals()[i].id, b.terminals()[i].id);
    EXPECT_EQ(a.terminals()[i].cell, b.terminals()[i].cell);
    EXPECT_EQ(a.terminals()[i].location.lat_deg, b.terminals()[i].location.lat_deg);
    EXPECT_EQ(a.terminals()[i].location.lon_deg, b.terminals()[i].location.lon_deg);
  }
  EXPECT_EQ(a.cells(), b.cells());

  const Placement c = Placement::generate(config, Rng{124}.fork("fleet/placement"));
  bool any_differs = false;
  for (std::size_t i = 0; i < c.terminals().size(); ++i) {
    if (c.terminals()[i].location.lat_deg != a.terminals()[i].location.lat_deg) {
      any_differs = true;
      break;
    }
  }
  EXPECT_TRUE(any_differs) << "different seeds should place different fleets";
}

TEST(Placement, CellsPartitionTheFleet) {
  Placement::Config config;
  config.terminals = 300;
  const Placement p = Placement::generate(config, Rng{7});
  std::size_t total = 0;
  CellId prev_cell = 0;
  bool first = true;
  for (const auto& [cell, ids] : p.cells()) {
    EXPECT_FALSE(ids.empty());
    if (!first) {
      EXPECT_LT(prev_cell, cell) << "cells() must be cell-id ordered";
    }
    prev_cell = cell;
    first = false;
    for (std::size_t i = 1; i < ids.size(); ++i) {
      EXPECT_LT(ids[i - 1], ids[i]) << "ids ascend within a cell";
    }
    total += ids.size();
    for (const TerminalId id : ids) {
      ASSERT_LT(id, p.terminals().size());
      EXPECT_EQ(p.terminals()[id].cell, cell);
    }
  }
  EXPECT_EQ(total, 300u);
  EXPECT_GT(p.cell_count(), 1u) << "300 terminals should span several cells";
}

// ---------------------------------------------------------------- demand

TEST(DemandModel, PureAndQueryOrderIndependent) {
  const DemandModel model{DemandModel::Config{}};
  const std::uint64_t seed = mix64(42, 7);
  // Random-access queries equal repeated/sequential ones bit-for-bit.
  const DemandModel::Demand late = model.at(seed, at(3600));
  for (double t : {0.0, 2.0, 100.0, 3600.0, 100.0}) {
    const DemandModel::Demand x = model.at(seed, at(t));
    const DemandModel::Demand y = model.at(seed, at(t));
    EXPECT_EQ(x.down.bits_per_second(), y.down.bits_per_second());
    EXPECT_EQ(x.up.bits_per_second(), y.up.bits_per_second());
  }
  const DemandModel::Demand late2 = model.at(seed, at(3600));
  EXPECT_EQ(late.down.bits_per_second(), late2.down.bits_per_second());
}

TEST(DemandModel, ClassMixFollowsConfiguredFractions) {
  const DemandModel model{DemandModel::Config{}};
  int counts[4] = {0, 0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    counts[static_cast<int>(model.class_of(mix64(99, static_cast<std::uint64_t>(i))))]++;
  }
  const DemandModel::Config def;
  EXPECT_NEAR(counts[0] / double(n), def.bulk.fraction, 0.02);
  EXPECT_NEAR(counts[1] / double(n), def.speedtest.fraction, 0.02);
  EXPECT_NEAR(counts[2] / double(n), def.web.fraction, 0.02);
  EXPECT_NEAR(counts[3] / double(n), def.idle.fraction, 0.02);
}

// --------------------------------------------------------------- arbiter

CellArbiter make_arbiter() {
  CellArbiter::Config config;
  config.downlink_load = leo::StarlinkAccess::Config{}.downlink_load;
  config.uplink_load = leo::StarlinkAccess::Config{}.uplink_load;
  return CellArbiter{config, Rng{5}.fork("down"), Rng{5}.fork("up")};
}

TEST(CellArbiter, WorkConservationUnderAndOverLoad) {
  CellArbiter arb = make_arbiter();
  arb.attach(1, 1.0, false);
  arb.attach(2, 1.0, false);
  arb.set_demand(1, DataRate::mbps(10), DataRate::mbps(1));
  arb.set_demand(2, DataRate::mbps(20), DataRate::mbps(2));
  arb.reallocate(at(0));
  // Under-load: everyone gets exactly their demand.
  EXPECT_DOUBLE_EQ(arb.background_allocated(CellArbiter::kDown).bits_per_second(), 30e6);
  EXPECT_DOUBLE_EQ(arb.allocation(1, CellArbiter::kDown).bits_per_second(), 10e6);

  // Over-load: the sum equals the schedulable budget (nominal x ceiling).
  arb.set_demand(1, DataRate::mbps(400), DataRate::mbps(1));
  arb.set_demand(2, DataRate::mbps(400), DataRate::mbps(2));
  arb.reallocate(at(2));
  const double budget = arb.config().cell_downlink.bits_per_second() *
                        arb.config().downlink_load.ceiling;
  EXPECT_NEAR(arb.background_allocated(CellArbiter::kDown).bits_per_second(), budget,
              budget * 1e-9);
  EXPECT_DOUBLE_EQ(arb.utilization(CellArbiter::kDown, at(2)),
                   arb.config().downlink_load.ceiling);
}

TEST(CellArbiter, WeightMonotonicityAndNoStarvation) {
  CellArbiter arb = make_arbiter();
  arb.attach(1, 1.0, false);
  arb.attach(2, 3.0, false);
  arb.attach(3, 1.0, false);
  // Saturate: all three want more than the cell has.
  for (TerminalId id : {1u, 2u, 3u}) {
    arb.set_demand(id, DataRate::mbps(900), DataRate::mbps(50));
  }
  arb.reallocate(at(0));
  const double a1 = arb.allocation(1, CellArbiter::kDown).bits_per_second();
  const double a2 = arb.allocation(2, CellArbiter::kDown).bits_per_second();
  const double a3 = arb.allocation(3, CellArbiter::kDown).bits_per_second();
  EXPECT_GT(a1, 0.0);
  EXPECT_GT(a2, 0.0);
  EXPECT_GT(a3, 0.0);
  EXPECT_DOUBLE_EQ(a1, a3) << "equal weight + equal demand -> equal share";
  EXPECT_NEAR(a2, 3.0 * a1, a2 * 1e-9) << "3x weight -> 3x share under scarcity";
}

TEST(CellArbiter, ElasticForegroundKeepsProportionalShare) {
  CellArbiter arb = make_arbiter();
  arb.attach(Fleet::kForegroundId, 1.0, true);
  arb.attach(1, 1.0, false);
  arb.set_demand(1, DataRate::mbps(5000), DataRate::mbps(100));  // hog
  arb.reallocate(at(0));
  // The ceiling clamp guarantees the elastic pool at least (1 - ceiling);
  // the elastic weight in the water-filling denominator guarantees more when
  // the background cannot burn the whole budget.
  const double nominal = arb.config().cell_downlink.bits_per_second();
  const double avail = arb.available_fraction(CellArbiter::kDown, at(0));
  EXPECT_GE(avail, 1.0 - arb.config().downlink_load.ceiling - 1e-12);
  EXPECT_DOUBLE_EQ(
      arb.allocation(Fleet::kForegroundId, CellArbiter::kDown).bits_per_second(),
      nominal * avail);
}

TEST(CellArbiter, EpochAccounting) {
  CellArbiter arb = make_arbiter();
  EXPECT_EQ(arb.stats().reallocations, 0u);
  arb.attach(1, 1.0, false);
  EXPECT_EQ(arb.stats().attaches, 1u);
  arb.reallocate(at(0));
  EXPECT_EQ(arb.stats().reallocations, 1u);
  arb.reallocate(at(0));
  EXPECT_EQ(arb.stats().reallocations, 1u) << "clean epoch must be a no-op";

  // Zero -> positive demand counts as an active-set attach; back to zero as
  // a detach. Both dirty the epoch.
  arb.set_demand(1, DataRate::mbps(4), DataRate::zero());
  EXPECT_EQ(arb.stats().attaches, 2u);
  arb.reallocate(at(2));
  EXPECT_EQ(arb.stats().reallocations, 2u);
  arb.set_demand(1, DataRate::zero(), DataRate::zero());
  EXPECT_EQ(arb.stats().detaches, 1u);

  arb.note_handover();
  EXPECT_EQ(arb.stats().handovers, 1u);
  arb.reallocate(at(4));
  EXPECT_EQ(arb.stats().reallocations, 3u);

  arb.detach(1);
  EXPECT_EQ(arb.stats().detaches, 2u);
  EXPECT_FALSE(arb.has_background());
}

TEST(CellArbiter, LoadSurgeOverrideComposesAsFloor) {
  CellArbiter arb = make_arbiter();
  arb.attach(1, 1.0, false);
  arb.set_demand(1, DataRate::mbps(90), DataRate::mbps(8));
  const double base = arb.utilization(CellArbiter::kDown, at(0));
  EXPECT_DOUBLE_EQ(base, 0.2) << "90/450 = 0.2 contention";

  // Override above contention pins the higher utilization...
  arb.set_load_override(CellArbiter::kDown, 0.6);
  EXPECT_DOUBLE_EQ(arb.utilization(CellArbiter::kDown, at(0)), 0.6);
  EXPECT_DOUBLE_EQ(arb.available_fraction(CellArbiter::kDown, at(0)), 0.4);
  // ...an override below contention does not mask the simulated demand.
  arb.set_load_override(CellArbiter::kDown, 0.11);
  EXPECT_DOUBLE_EQ(arb.utilization(CellArbiter::kDown, at(0)), base);
  arb.clear_load_override(CellArbiter::kDown);
  EXPECT_DOUBLE_EQ(arb.utilization(CellArbiter::kDown, at(0)), base);
}

TEST(CellArbiter, FallbackDelegatesToAmbientProcess) {
  // No background members: both directions must read the ambient LoadProcess
  // bit-for-bit, including overrides.
  CellArbiter::Config config;
  config.downlink_load = leo::StarlinkAccess::Config{}.downlink_load;
  config.uplink_load = leo::StarlinkAccess::Config{}.uplink_load;
  CellArbiter arb{config, Rng{11}.fork("d"), Rng{11}.fork("u")};
  phy::LoadProcess ref_down{config.downlink_load, Rng{11}.fork("d")};
  phy::LoadProcess ref_up{config.uplink_load, Rng{11}.fork("u")};
  arb.attach(Fleet::kForegroundId, 1.0, true);  // elastic members don't count
  EXPECT_FALSE(arb.has_background());
  for (double t : {0.0, 2.0, 4.0, 60.0, 61.5}) {
    EXPECT_EQ(arb.available_fraction(CellArbiter::kDown, at(t)),
              ref_down.available_fraction(at(t)));
    EXPECT_EQ(arb.available_fraction(CellArbiter::kUp, at(t)),
              ref_up.available_fraction(at(t)));
  }
  arb.set_load_override(CellArbiter::kDown, 0.9);
  ref_down.set_utilization_override(0.9);
  EXPECT_EQ(arb.available_fraction(CellArbiter::kDown, at(8)),
            ref_down.available_fraction(at(8)));
}

// ---------------------------------------------------- fleet integration

TEST(Fleet, SizeOneIsBitIdenticalToNoFleet) {
  // Two simulations, same seed: one with a size-1 fleet installed, one bare.
  // Every capacity query must return the same bits.
  sim::Simulator bare_sim{77};
  sim::Network bare_net{bare_sim};
  leo::StarlinkAccess bare{bare_net, {}};

  sim::Simulator fleet_sim{77};
  sim::Network fleet_net{fleet_sim};
  leo::StarlinkAccess access{fleet_net, {}};
  Fleet::Config config;
  config.size = 1;
  Fleet fleet{fleet_sim, access, config};
  ASSERT_EQ(access.cell_share_model(), &fleet);
  EXPECT_EQ(fleet.terminal_count(), 0u);
  EXPECT_EQ(fleet_sim.pending_events(), 0u)
      << "a size-1 fleet must stay event-silent";

  for (double t : {0.0, 1.0, 2.0, 30.0, 600.0, 3599.0}) {
    EXPECT_EQ(access.downlink_capacity(at(t)).bits_per_second(),
              bare.downlink_capacity(at(t)).bits_per_second());
    EXPECT_EQ(access.uplink_capacity(at(t)).bits_per_second(),
              bare.uplink_capacity(at(t)).bits_per_second());
  }
}

TEST(Fleet, SpeedtestPinSizeOneMatchesLegacyPath) {
  // The fig5 regression: the full speedtest campaign with fleet.size=1 must
  // reproduce the no-fleet campaign byte-for-byte.
  measure::SpeedtestCampaign::Config config;
  config.seed = 4;
  config.tests = 2;
  const auto legacy = measure::SpeedtestCampaign::run(config);
  config.fleet.size = 1;
  const auto pinned = measure::SpeedtestCampaign::run(config);
  ASSERT_EQ(legacy.mbps.size(), pinned.mbps.size());
  for (std::size_t i = 0; i < legacy.mbps.size(); ++i) {
    EXPECT_EQ(legacy.mbps.values()[i], pinned.mbps.values()[i]);
  }
}

TEST(Fleet, ContentionChangesTheSpeedtestAndTerminates) {
  // A populated fleet must (a) change the measured capacity relative to the
  // synthetic-load path and (b) never keep Simulator::run() alive after the
  // workload drains (the daemon-timer contract).
  measure::SpeedtestCampaign::Config config;
  config.seed = 4;
  config.tests = 1;
  const auto legacy = measure::SpeedtestCampaign::run(config);
  config.fleet.size = 40;
  const auto contended = measure::SpeedtestCampaign::run(config);  // must return
  ASSERT_EQ(contended.mbps.size(), 1u);
  EXPECT_NE(legacy.mbps.values()[0], contended.mbps.values()[0]);
}

TEST(FleetCampaign, TicksForTheWholeDuration) {
  FleetCampaign::Config config;
  config.seed = 9;
  config.duration = Duration::seconds(60);
  config.fleet.size = 30;
  const auto r = FleetCampaign::run(config);
  // Construction tick at t=0 plus one per 2 s epoch through t=60.
  EXPECT_GE(r.epochs, 30u);
  EXPECT_LE(r.epochs, 32u);
  EXPECT_EQ(r.terminals, 29u);
  EXPECT_GT(r.cells, 0u);
  EXPECT_GT(r.attaches, 0u) << "demand sessions should toggle members active";
  EXPECT_GT(r.cell_util_down.total_count(), 0u);
}

TEST(FleetCampaign, LoadSurgeScenarioComposesWithContention) {
  const auto scenario = std::make_shared<scenario::Scenario>(scenario::Scenario::parse(
      "scenario surge\nload_surge start=0s end=10m utilization=0.93 direction=down\n"));
  FleetCampaign::Config config;
  config.seed = 9;
  config.duration = Duration::seconds(60);
  config.fleet.size = 30;
  const auto clear = FleetCampaign::run(config);
  config.scenario = scenario;
  const auto surged = FleetCampaign::run(config);
  ASSERT_FALSE(clear.foreground_down_mbps.empty());
  ASSERT_FALSE(surged.foreground_down_mbps.empty());
  // Utilization pinned at the ceiling: the foreground sees the minimum.
  // (The construction-time epoch samples before the injector's t=0 event
  // fires, so check the median, not the mean.)
  EXPECT_LT(surged.foreground_down_mbps.summary().mean(),
            clear.foreground_down_mbps.summary().mean());
  const double nominal = leo::StarlinkAccess::Config{}.cell_downlink.bits_per_second();
  const double ceiling = leo::StarlinkAccess::Config{}.downlink_load.ceiling;
  EXPECT_NEAR(surged.foreground_down_mbps.median(), nominal * (1.0 - ceiling) / 1e6, 1e-6);
}

TEST(FleetCampaign, MergedResultIsJobsInvariant) {
  FleetCampaign::Config config;
  config.seed = 21;
  config.duration = Duration::seconds(40);
  config.fleet.size = 60;
  const auto serial = runner::run_merged<FleetCampaign>({3, 1}, config);
  const auto parallel = runner::run_merged<FleetCampaign>({3, 3}, config);
  EXPECT_EQ(serial.epochs, parallel.epochs);
  EXPECT_EQ(serial.attaches, parallel.attaches);
  EXPECT_EQ(serial.handovers, parallel.handovers);
  EXPECT_EQ(serial.reallocations, parallel.reallocations);
  EXPECT_EQ(serial.cell_util_down.total_count(), parallel.cell_util_down.total_count());
  EXPECT_EQ(serial.cell_util_down.pooled().mean(), parallel.cell_util_down.pooled().mean());
  EXPECT_EQ(serial.cell_util_down.pooled_quantile(0.5),
            parallel.cell_util_down.pooled_quantile(0.5));
  EXPECT_EQ(serial.terminal_down_mbps.pooled().mean(),
            parallel.terminal_down_mbps.pooled().mean());
  ASSERT_EQ(serial.foreground_down_mbps.size(), parallel.foreground_down_mbps.size());
  EXPECT_EQ(serial.foreground_down_mbps.summary().mean(),
            parallel.foreground_down_mbps.summary().mean());
}

}  // namespace
}  // namespace slp::fleet
