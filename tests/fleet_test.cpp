// fleet_test — the multi-terminal fleet subsystem (src/fleet/).
//
// Covers the four layers and their contracts: Placement (seed-derived,
// deterministic, cell-grouped), DemandModel (pure counter-based function of
// (seed, t)), CellArbiter (weighted proportional-fair invariants: work
// conservation, weight monotonicity, no starvation; epoch accounting;
// load-surge override composition), and the Fleet/FleetCampaign integration
// (size-1 fallback bit-identity to the legacy LoadProcess path, the fig5
// speedtest pin, queue-drain termination under packet campaigns, and
// --jobs invariance of the merged campaign).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "fleet/campaign.hpp"
#include "fleet/cell_arbiter.hpp"
#include "fleet/demand.hpp"
#include "fleet/fleet.hpp"
#include "fleet/placement.hpp"
#include "leo/access.hpp"
#include "measure/campaign.hpp"
#include "runner/sweep.hpp"
#include "scenario/scenario.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace slp::fleet {
namespace {

TimePoint at(double seconds) {
  return TimePoint::epoch() + Duration::seconds(seconds);
}

// ------------------------------------------------------------- placement

TEST(Placement, DeterministicPerSeedAndConfig) {
  Placement::Config config;
  config.terminals = 400;
  const Placement a = Placement::generate(config, Rng{123}.fork("fleet/placement"));
  const Placement b = Placement::generate(config, Rng{123}.fork("fleet/placement"));
  ASSERT_EQ(a.total_terminals(), 400u);
  ASSERT_EQ(b.total_terminals(), 400u);
  ASSERT_EQ(a.cells().size(), b.cells().size());
  for (std::size_t i = 0; i < a.cells().size(); ++i) {
    EXPECT_EQ(a.cells()[i].cell, b.cells()[i].cell);
    EXPECT_EQ(a.cells()[i].first, b.cells()[i].first);
    EXPECT_EQ(a.cells()[i].count, b.cells()[i].count);
    const auto ta = a.materialize(a.cells()[i]);
    const auto tb = b.materialize(b.cells()[i]);
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t j = 0; j < ta.size(); ++j) {
      EXPECT_EQ(ta[j].id, tb[j].id);
      EXPECT_EQ(ta[j].cell, tb[j].cell);
      EXPECT_EQ(ta[j].location.lat_deg, tb[j].location.lat_deg);
      EXPECT_EQ(ta[j].location.lon_deg, tb[j].location.lon_deg);
    }
  }

  const Placement c = Placement::generate(config, Rng{124}.fork("fleet/placement"));
  bool any_differs = c.cells().size() != a.cells().size();
  for (std::size_t i = 0; !any_differs && i < c.cells().size(); ++i) {
    any_differs = c.cells()[i].cell != a.cells()[i].cell ||
                  c.cells()[i].count != a.cells()[i].count;
  }
  if (!any_differs && !c.cells().empty()) {
    const auto tc = c.materialize(c.cells().front());
    const auto tac = a.materialize(a.cells().front());
    any_differs = tc.front().location.lat_deg != tac.front().location.lat_deg;
  }
  EXPECT_TRUE(any_differs) << "different seeds should place different fleets";
}

TEST(Placement, LazyRangesPartitionTheFleet) {
  Placement::Config config;
  config.terminals = 300;
  const Placement p = Placement::generate(config, Rng{7});
  std::uint32_t next = 0;
  CellId prev_cell = 0;
  bool first = true;
  for (const Placement::CellRange& r : p.cells()) {
    EXPECT_GT(r.count, 0u);
    if (!first) {
      EXPECT_LT(prev_cell, r.cell) << "cells() must be cell-id ordered";
    }
    prev_cell = r.cell;
    first = false;
    EXPECT_EQ(r.first, next) << "id ranges must be contiguous in cell-id order";
    next += r.count;
    EXPECT_EQ(p.find(r.cell), &r);
    const auto terms = p.materialize(r);
    ASSERT_EQ(terms.size(), r.count);
    for (std::size_t j = 0; j < terms.size(); ++j) {
      EXPECT_EQ(terms[j].id, r.first + j);
      EXPECT_EQ(terms[j].cell, r.cell);
      EXPECT_EQ(p.grid().cell_of(terms[j].location), r.cell)
          << "materialized coordinates must land inside their own cell";
    }
  }
  EXPECT_EQ(next, 300u);
  EXPECT_EQ(p.total_terminals(), 300u);
  EXPECT_GT(p.cell_count(), 1u) << "300 terminals should span several cells";
}

TEST(Placement, MillionTerminalContinentStaysLazy) {
  Placement::Config config = Placement::continental_europe();
  config.terminals = 1'000'000;
  const Placement p = Placement::generate(config, Rng{3}.fork("fleet/placement"));
  EXPECT_EQ(p.total_terminals(), 1'000'000u);
  EXPECT_GT(p.cell_count(), 1'000u) << "a continent spans many cells";
  EXPECT_LT(p.cell_count(), 200'000u) << "state must be O(populated cells), never O(N)";
  // Materialization is per-cell, order-independent, and repeatable.
  const Placement::CellRange& mid = p.cells()[p.cells().size() / 2];
  const auto once = p.materialize(mid);
  const auto again = p.materialize(mid.cell);
  ASSERT_EQ(once.size(), again.size());
  for (std::size_t j = 0; j < once.size(); ++j) {
    EXPECT_EQ(once[j].location.lat_deg, again[j].location.lat_deg);
    EXPECT_EQ(once[j].location.lon_deg, again[j].location.lon_deg);
  }
}

// ------------------------------------------------------ hierarchical grid

TEST(HierarchicalGrid, SupercellsCoverBaseCellsWithoutKeyCollisions) {
  const HierarchicalGrid h{24.0, 8};
  Placement::Config config = Placement::continental_europe();
  config.terminals = 5000;
  const Placement p = Placement::generate(config, Rng{5});
  std::size_t distinct_supers = 0;
  CellId prev_super = 0;
  bool first = true;
  for (const Placement::CellRange& r : p.cells()) {
    const CellId super = h.super_of(r.cell);
    EXPECT_EQ(h.coarse().cell_of(h.base().center_of(r.cell)), super)
        << "super_of must be the coarse cell containing the base-cell centre";
    EXPECT_EQ(super & HierarchicalGrid::kAggregateKeyBit, 0u)
        << "real grid ids never use the aggregate tag bit";
    if (first || super != prev_super) ++distinct_supers;
    prev_super = super;
    first = false;
  }
  EXPECT_GT(distinct_supers, 1u);
  EXPECT_LT(distinct_supers, p.cell_count())
      << "a factor-8 supercell should fold many base cells";
}

// ---------------------------------------------------------------- demand

TEST(DemandModel, PureAndQueryOrderIndependent) {
  const DemandModel model{DemandModel::Config{}};
  const std::uint64_t seed = mix64(42, 7);
  // Random-access queries equal repeated/sequential ones bit-for-bit.
  const DemandModel::Demand late = model.at(seed, at(3600));
  for (double t : {0.0, 2.0, 100.0, 3600.0, 100.0}) {
    const DemandModel::Demand x = model.at(seed, at(t));
    const DemandModel::Demand y = model.at(seed, at(t));
    EXPECT_EQ(x.down.bits_per_second(), y.down.bits_per_second());
    EXPECT_EQ(x.up.bits_per_second(), y.up.bits_per_second());
  }
  const DemandModel::Demand late2 = model.at(seed, at(3600));
  EXPECT_EQ(late.down.bits_per_second(), late2.down.bits_per_second());
}

TEST(DemandModel, ClassMixFollowsConfiguredFractions) {
  const DemandModel model{DemandModel::Config{}};
  int counts[7] = {};
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    counts[static_cast<int>(model.class_of(mix64(99, static_cast<std::uint64_t>(i))))]++;
  }
  const DemandModel::Config def;
  EXPECT_NEAR(counts[0] / double(n), def.bulk.fraction, 0.02);
  EXPECT_NEAR(counts[1] / double(n), def.speedtest.fraction, 0.02);
  EXPECT_NEAR(counts[2] / double(n), def.web.fraction, 0.02);
  // QoE classes are disabled in the stock mix.
  EXPECT_EQ(counts[static_cast<int>(DemandClass::kVideo)], 0);
  EXPECT_EQ(counts[static_cast<int>(DemandClass::kVc)], 0);
  EXPECT_EQ(counts[static_cast<int>(DemandClass::kGame)], 0);
  EXPECT_NEAR(counts[static_cast<int>(DemandClass::kIdle)] / double(n),
              def.idle.fraction, 0.02);
}

TEST(DemandModel, DefaultMixUnchangedByQoeClasses) {
  // The zero-fraction QoE classes must be invisible: every terminal keeps
  // the exact class and demand it had before they existed, so the stock
  // fig-bench exports stay byte-identical.
  const DemandModel model{named_mix("default")};
  for (int i = 0; i < 5000; ++i) {
    const DemandClass c = model.class_of(mix64(7, static_cast<std::uint64_t>(i)));
    EXPECT_TRUE(c == DemandClass::kBulk || c == DemandClass::kSpeedtest ||
                c == DemandClass::kWeb || c == DemandClass::kIdle);
  }
}

TEST(DemandModel, NamedMixesEnableQoeClasses) {
  for (std::string_view name : mix_names()) {
    EXPECT_NO_THROW(static_cast<void>(named_mix(name)));
  }
  EXPECT_THROW(static_cast<void>(named_mix("nope")), std::invalid_argument);

  const DemandModel model{named_mix("mixed")};
  int counts[7] = {};
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    counts[static_cast<int>(model.class_of(mix64(99, static_cast<std::uint64_t>(i))))]++;
  }
  const DemandModel::Config mixed = named_mix("mixed");
  EXPECT_NEAR(counts[static_cast<int>(DemandClass::kVideo)] / double(n),
              mixed.video.fraction, 0.02);
  EXPECT_NEAR(counts[static_cast<int>(DemandClass::kVc)] / double(n),
              mixed.vc.fraction, 0.02);
  EXPECT_NEAR(counts[static_cast<int>(DemandClass::kGame)] / double(n),
              mixed.game.fraction, 0.02);
  // expected() folds the new classes into the class-mix mean.
  EXPECT_GT(model.expected().down.bits_per_second(), 0.0);
}

// --------------------------------------------------------------- arbiter

CellArbiter make_arbiter() {
  CellArbiter::Config config;
  config.downlink_load = leo::StarlinkAccess::Config{}.downlink_load;
  config.uplink_load = leo::StarlinkAccess::Config{}.uplink_load;
  return CellArbiter{config, Rng{5}.fork("down"), Rng{5}.fork("up")};
}

TEST(CellArbiter, WorkConservationUnderAndOverLoad) {
  CellArbiter arb = make_arbiter();
  arb.attach(1, 1.0, false);
  arb.attach(2, 1.0, false);
  arb.set_demand(1, DataRate::mbps(10), DataRate::mbps(1));
  arb.set_demand(2, DataRate::mbps(20), DataRate::mbps(2));
  arb.reallocate(at(0));
  // Under-load: everyone gets exactly their demand.
  EXPECT_DOUBLE_EQ(arb.background_allocated(CellArbiter::kDown).bits_per_second(), 30e6);
  EXPECT_DOUBLE_EQ(arb.allocation(1, CellArbiter::kDown).bits_per_second(), 10e6);

  // Over-load: the sum equals the schedulable budget (nominal x ceiling).
  arb.set_demand(1, DataRate::mbps(400), DataRate::mbps(1));
  arb.set_demand(2, DataRate::mbps(400), DataRate::mbps(2));
  arb.reallocate(at(2));
  const double budget = arb.config().cell_downlink.bits_per_second() *
                        arb.config().downlink_load.ceiling;
  EXPECT_NEAR(arb.background_allocated(CellArbiter::kDown).bits_per_second(), budget,
              budget * 1e-9);
  EXPECT_DOUBLE_EQ(arb.utilization(CellArbiter::kDown, at(2)),
                   arb.config().downlink_load.ceiling);
}

TEST(CellArbiter, WeightMonotonicityAndNoStarvation) {
  CellArbiter arb = make_arbiter();
  arb.attach(1, 1.0, false);
  arb.attach(2, 3.0, false);
  arb.attach(3, 1.0, false);
  // Saturate: all three want more than the cell has.
  for (TerminalId id : {1u, 2u, 3u}) {
    arb.set_demand(id, DataRate::mbps(900), DataRate::mbps(50));
  }
  arb.reallocate(at(0));
  const double a1 = arb.allocation(1, CellArbiter::kDown).bits_per_second();
  const double a2 = arb.allocation(2, CellArbiter::kDown).bits_per_second();
  const double a3 = arb.allocation(3, CellArbiter::kDown).bits_per_second();
  EXPECT_GT(a1, 0.0);
  EXPECT_GT(a2, 0.0);
  EXPECT_GT(a3, 0.0);
  EXPECT_DOUBLE_EQ(a1, a3) << "equal weight + equal demand -> equal share";
  EXPECT_NEAR(a2, 3.0 * a1, a2 * 1e-9) << "3x weight -> 3x share under scarcity";
}

TEST(CellArbiter, ElasticForegroundKeepsProportionalShare) {
  CellArbiter arb = make_arbiter();
  arb.attach(Fleet::kForegroundId, 1.0, true);
  arb.attach(1, 1.0, false);
  arb.set_demand(1, DataRate::mbps(5000), DataRate::mbps(100));  // hog
  arb.reallocate(at(0));
  // The ceiling clamp guarantees the elastic pool at least (1 - ceiling);
  // the elastic weight in the water-filling denominator guarantees more when
  // the background cannot burn the whole budget.
  const double nominal = arb.config().cell_downlink.bits_per_second();
  const double avail = arb.available_fraction(CellArbiter::kDown, at(0));
  EXPECT_GE(avail, 1.0 - arb.config().downlink_load.ceiling - 1e-12);
  EXPECT_DOUBLE_EQ(
      arb.allocation(Fleet::kForegroundId, CellArbiter::kDown).bits_per_second(),
      nominal * avail);
}

TEST(CellArbiter, EpochAccounting) {
  CellArbiter arb = make_arbiter();
  EXPECT_EQ(arb.stats().reallocations, 0u);
  arb.attach(1, 1.0, false);
  EXPECT_EQ(arb.stats().attaches, 1u);
  arb.reallocate(at(0));
  EXPECT_EQ(arb.stats().reallocations, 1u);
  arb.reallocate(at(0));
  EXPECT_EQ(arb.stats().reallocations, 1u) << "clean epoch must be a no-op";

  // Zero -> positive demand counts as an active-set attach; back to zero as
  // a detach. Both dirty the epoch.
  arb.set_demand(1, DataRate::mbps(4), DataRate::zero());
  EXPECT_EQ(arb.stats().attaches, 2u);
  arb.reallocate(at(2));
  EXPECT_EQ(arb.stats().reallocations, 2u);
  arb.set_demand(1, DataRate::zero(), DataRate::zero());
  EXPECT_EQ(arb.stats().detaches, 1u);

  arb.note_handover();
  EXPECT_EQ(arb.stats().handovers, 1u);
  arb.reallocate(at(4));
  EXPECT_EQ(arb.stats().reallocations, 3u);

  arb.detach(1);
  EXPECT_EQ(arb.stats().detaches, 2u);
  EXPECT_FALSE(arb.has_background());
}

TEST(CellArbiter, LoadSurgeOverrideComposesAsFloor) {
  CellArbiter arb = make_arbiter();
  arb.attach(1, 1.0, false);
  arb.set_demand(1, DataRate::mbps(90), DataRate::mbps(8));
  const double base = arb.utilization(CellArbiter::kDown, at(0));
  EXPECT_DOUBLE_EQ(base, 0.2) << "90/450 = 0.2 contention";

  // Override above contention pins the higher utilization...
  arb.set_load_override(CellArbiter::kDown, 0.6);
  EXPECT_DOUBLE_EQ(arb.utilization(CellArbiter::kDown, at(0)), 0.6);
  EXPECT_DOUBLE_EQ(arb.available_fraction(CellArbiter::kDown, at(0)), 0.4);
  // ...an override below contention does not mask the simulated demand.
  arb.set_load_override(CellArbiter::kDown, 0.11);
  EXPECT_DOUBLE_EQ(arb.utilization(CellArbiter::kDown, at(0)), base);
  arb.clear_load_override(CellArbiter::kDown);
  EXPECT_DOUBLE_EQ(arb.utilization(CellArbiter::kDown, at(0)), base);
}

TEST(CellArbiter, FallbackDelegatesToAmbientProcess) {
  // No background members: both directions must read the ambient LoadProcess
  // bit-for-bit, including overrides.
  CellArbiter::Config config;
  config.downlink_load = leo::StarlinkAccess::Config{}.downlink_load;
  config.uplink_load = leo::StarlinkAccess::Config{}.uplink_load;
  CellArbiter arb{config, Rng{11}.fork("d"), Rng{11}.fork("u")};
  phy::LoadProcess ref_down{config.downlink_load, Rng{11}.fork("d")};
  phy::LoadProcess ref_up{config.uplink_load, Rng{11}.fork("u")};
  arb.attach(Fleet::kForegroundId, 1.0, true);  // elastic members don't count
  EXPECT_FALSE(arb.has_background());
  for (double t : {0.0, 2.0, 4.0, 60.0, 61.5}) {
    EXPECT_EQ(arb.available_fraction(CellArbiter::kDown, at(t)),
              ref_down.available_fraction(at(t)));
    EXPECT_EQ(arb.available_fraction(CellArbiter::kUp, at(t)),
              ref_up.available_fraction(at(t)));
  }
  arb.set_load_override(CellArbiter::kDown, 0.9);
  ref_down.set_utilization_override(0.9);
  EXPECT_EQ(arb.available_fraction(CellArbiter::kDown, at(8)),
            ref_down.available_fraction(at(8)));
}

// ---------------------------------------------------- fleet integration

TEST(Fleet, SizeOneIsBitIdenticalToNoFleet) {
  // Two simulations, same seed: one with a size-1 fleet installed, one bare.
  // Every capacity query must return the same bits.
  sim::Simulator bare_sim{77};
  sim::Network bare_net{bare_sim};
  leo::StarlinkAccess bare{bare_net, {}};

  sim::Simulator fleet_sim{77};
  sim::Network fleet_net{fleet_sim};
  leo::StarlinkAccess access{fleet_net, {}};
  Fleet::Config config;
  config.size = 1;
  Fleet fleet{fleet_sim, access, config};
  ASSERT_EQ(access.cell_share_model(), &fleet);
  EXPECT_EQ(fleet.terminal_count(), 0u);
  EXPECT_EQ(fleet_sim.pending_events(), 0u)
      << "a size-1 fleet must stay event-silent";

  for (double t : {0.0, 1.0, 2.0, 30.0, 600.0, 3599.0}) {
    EXPECT_EQ(access.downlink_capacity(at(t)).bits_per_second(),
              bare.downlink_capacity(at(t)).bits_per_second());
    EXPECT_EQ(access.uplink_capacity(at(t)).bits_per_second(),
              bare.uplink_capacity(at(t)).bits_per_second());
  }
}

TEST(Fleet, SpeedtestPinSizeOneMatchesLegacyPath) {
  // The fig5 regression: the full speedtest campaign with fleet.size=1 must
  // reproduce the no-fleet campaign byte-for-byte.
  measure::SpeedtestCampaign::Config config;
  config.seed = 4;
  config.tests = 2;
  const auto legacy = measure::SpeedtestCampaign::run(config);
  config.fleet.size = 1;
  const auto pinned = measure::SpeedtestCampaign::run(config);
  ASSERT_EQ(legacy.mbps.size(), pinned.mbps.size());
  for (std::size_t i = 0; i < legacy.mbps.size(); ++i) {
    EXPECT_EQ(legacy.mbps.values()[i], pinned.mbps.values()[i]);
  }
}

TEST(Fleet, ContentionChangesTheSpeedtestAndTerminates) {
  // A populated fleet must (a) change the measured capacity relative to the
  // synthetic-load path and (b) never keep Simulator::run() alive after the
  // workload drains (the daemon-timer contract).
  measure::SpeedtestCampaign::Config config;
  config.seed = 4;
  config.tests = 1;
  const auto legacy = measure::SpeedtestCampaign::run(config);
  config.fleet.size = 40;
  const auto contended = measure::SpeedtestCampaign::run(config);  // must return
  ASSERT_EQ(contended.mbps.size(), 1u);
  EXPECT_NE(legacy.mbps.values()[0], contended.mbps.values()[0]);
}

TEST(FleetCampaign, TicksForTheWholeDuration) {
  FleetCampaign::Config config;
  config.seed = 9;
  config.duration = Duration::seconds(60);
  config.fleet.size = 30;
  const auto r = FleetCampaign::run(config);
  // Construction tick at t=0 plus one per 2 s epoch through t=60.
  EXPECT_GE(r.epochs, 30u);
  EXPECT_LE(r.epochs, 32u);
  EXPECT_EQ(r.terminals, 29u);
  EXPECT_GT(r.cells, 0u);
  EXPECT_GT(r.attaches, 0u) << "demand sessions should toggle members active";
  EXPECT_GT(r.cell_util_down.total_count(), 0u);
}

TEST(FleetCampaign, LoadSurgeScenarioComposesWithContention) {
  const auto scenario = std::make_shared<scenario::Scenario>(scenario::Scenario::parse(
      "scenario surge\nload_surge start=0s end=10m utilization=0.93 direction=down\n"));
  FleetCampaign::Config config;
  config.seed = 9;
  config.duration = Duration::seconds(60);
  config.fleet.size = 30;
  const auto clear = FleetCampaign::run(config);
  config.scenario = scenario;
  const auto surged = FleetCampaign::run(config);
  ASSERT_FALSE(clear.foreground_down_mbps.empty());
  ASSERT_FALSE(surged.foreground_down_mbps.empty());
  // Utilization pinned at the ceiling: the foreground sees the minimum.
  // (The construction-time epoch samples before the injector's t=0 event
  // fires, so check the median, not the mean.)
  EXPECT_LT(surged.foreground_down_mbps.summary().mean(),
            clear.foreground_down_mbps.summary().mean());
  const double nominal = leo::StarlinkAccess::Config{}.cell_downlink.bits_per_second();
  const double ceiling = leo::StarlinkAccess::Config{}.downlink_load.ceiling;
  EXPECT_NEAR(surged.foreground_down_mbps.median(), nominal * (1.0 - ceiling) / 1e6, 1e-6);
}

TEST(FleetCampaign, MergedResultIsJobsInvariant) {
  FleetCampaign::Config config;
  config.seed = 21;
  config.duration = Duration::seconds(40);
  config.fleet.size = 60;
  const auto serial = runner::run_merged<FleetCampaign>({3, 1}, config);
  const auto parallel = runner::run_merged<FleetCampaign>({3, 3}, config);
  EXPECT_EQ(serial.epochs, parallel.epochs);
  EXPECT_EQ(serial.attaches, parallel.attaches);
  EXPECT_EQ(serial.handovers, parallel.handovers);
  EXPECT_EQ(serial.reallocations, parallel.reallocations);
  EXPECT_EQ(serial.cell_util_down.total_count(), parallel.cell_util_down.total_count());
  EXPECT_EQ(serial.cell_util_down.pooled().mean(), parallel.cell_util_down.pooled().mean());
  EXPECT_EQ(serial.cell_util_down.pooled_quantile(0.5),
            parallel.cell_util_down.pooled_quantile(0.5));
  EXPECT_EQ(serial.terminal_down_mbps.pooled().mean(),
            parallel.terminal_down_mbps.pooled().mean());
  ASSERT_EQ(serial.foreground_down_mbps.size(), parallel.foreground_down_mbps.size());
  EXPECT_EQ(serial.foreground_down_mbps.summary().mean(),
            parallel.foreground_down_mbps.summary().mean());
}

// ------------------------------------- aggregation, sharding, vantages

void expect_keyed_equal(const stats::KeyedSamples& a, const stats::KeyedSamples& b) {
  ASSERT_EQ(a.size(), b.size());
  auto ib = b.groups().begin();
  for (const auto& [key, ga] : a.groups()) {
    ASSERT_EQ(key, ib->first);
    const stats::KeyedSamples::Group& gb = ib->second;
    EXPECT_EQ(ga.summary.count(), gb.summary.count());
    EXPECT_EQ(ga.summary.sum(), gb.summary.sum());
    EXPECT_EQ(ga.summary.mean(), gb.summary.mean());
    EXPECT_EQ(ga.summary.min(), gb.summary.min());
    EXPECT_EQ(ga.summary.max(), gb.summary.max());
    EXPECT_EQ(ga.counts, gb.counts);
    ++ib;
  }
}

TEST(FleetCampaign, ShardedEpochsAreByteIdenticalToSerial) {
  // The tentpole determinism contract: any shard count produces the same
  // bits as the serial reference loop, distributions included.
  FleetCampaign::Config config;
  config.seed = 21;
  config.duration = Duration::seconds(40);
  config.fleet.size = 400;
  config.fleet.shards = 1;
  const auto serial = FleetCampaign::run(config);
  for (int shards : {2, 4, 8}) {
    config.fleet.shards = shards;
    const auto sharded = FleetCampaign::run(config);
    EXPECT_EQ(serial.epochs, sharded.epochs);
    EXPECT_EQ(serial.attaches, sharded.attaches);
    EXPECT_EQ(serial.detaches, sharded.detaches);
    EXPECT_EQ(serial.handovers, sharded.handovers);
    EXPECT_EQ(serial.reallocations, sharded.reallocations);
    expect_keyed_equal(serial.cell_util_down, sharded.cell_util_down);
    expect_keyed_equal(serial.cell_util_up, sharded.cell_util_up);
    expect_keyed_equal(serial.terminal_down_mbps, sharded.terminal_down_mbps);
    ASSERT_EQ(serial.foreground_down_mbps.size(), sharded.foreground_down_mbps.size());
    for (std::size_t i = 0; i < serial.foreground_down_mbps.size(); ++i) {
      EXPECT_EQ(serial.foreground_down_mbps.values()[i],
                sharded.foreground_down_mbps.values()[i]);
    }
  }
}

TEST(FleetCampaign, AggregationPreservesForegroundBytes) {
  // Idle-cell aggregation only replaces cells the foreground never touches;
  // the measured stack's capacity series must not move by a single bit.
  FleetCampaign::Config config;
  config.seed = 9;
  config.duration = Duration::seconds(60);
  config.fleet.size = 5000;
  config.fleet.placement = Placement::continental_europe();
  const auto hot = FleetCampaign::run(config);
  config.fleet.aggregate_idle = true;
  const auto agg = FleetCampaign::run(config);

  EXPECT_EQ(hot.epochs, agg.epochs);
  ASSERT_EQ(hot.foreground_down_mbps.size(), agg.foreground_down_mbps.size());
  for (std::size_t i = 0; i < hot.foreground_down_mbps.size(); ++i) {
    EXPECT_EQ(hot.foreground_down_mbps.values()[i], agg.foreground_down_mbps.values()[i]);
    EXPECT_EQ(hot.foreground_up_mbps.values()[i], agg.foreground_up_mbps.values()[i]);
  }

  // Shape: the hot set collapses to the foreground cell, everything else
  // folds into supercell counters that conserve the fleet's population.
  EXPECT_GT(hot.cells, 100u);
  EXPECT_EQ(agg.cells, 1u);
  EXPECT_GT(agg.supercells, 1u);
  EXPECT_EQ(hot.aggregated_terminals, 0u);
  EXPECT_EQ(agg.terminals, hot.terminals) << "aggregation must conserve the population";
  EXPECT_GE(agg.aggregated_terminals, hot.terminals - 100)
      << "only the foreground cell's own members stay hot";
  // Aggregates still contribute per-supercell utilization samples.
  EXPECT_GT(agg.cell_util_down.size(), 1u);
}

TEST(Fleet, PromoteDemoteRoundTripRestoresAggregates) {
  sim::Simulator sim{77};
  sim::Network net{sim};
  leo::StarlinkAccess access{net, {}};
  Fleet::Config config;
  config.size = 2000;
  config.placement = Placement::continental_europe();
  config.aggregate_idle = true;
  Fleet fleet{sim, access, config};

  const std::vector<Fleet::Aggregate> before = fleet.aggregates();
  const std::size_t hot_before = fleet.cell_count();
  const CellId home = fleet.foreground_cell();
  const CellArbiter::Stats totals_before = fleet.totals();

  const leo::GeoPoint berlin{52.52, 13.40};
  ASSERT_TRUE(fleet.set_foreground_position(berlin, sim.now()));
  EXPECT_NE(fleet.foreground_cell(), home);
  ASSERT_TRUE(fleet.set_foreground_position(access.config().terminal, sim.now()));
  EXPECT_EQ(fleet.foreground_cell(), home);

  // Deterministic round trip: the aggregate counters and the hot set are
  // exactly what they were before the excursion.
  const std::vector<Fleet::Aggregate>& after = fleet.aggregates();
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].super, after[i].super);
    EXPECT_EQ(before[i].terminals, after[i].terminals);
    EXPECT_EQ(before[i].cells, after[i].cells);
  }
  EXPECT_EQ(fleet.cell_count(), hot_before);
  const CellArbiter::Stats totals_after = fleet.totals();
  EXPECT_GE(totals_after.attaches, totals_before.attaches)
      << "retired counters keep totals monotonic across demotion";
}

TEST(Fleet, VantagesPinCellsHotAndSplitTheElasticPool) {
  sim::Simulator sim{31};
  sim::Network net{sim};
  leo::StarlinkAccess access{net, {}};
  Fleet::Config config;
  config.size = 2000;
  config.placement = Placement::continental_europe();
  config.aggregate_idle = true;
  Fleet fleet{sim, access, config};

  const std::size_t hot0 = fleet.cell_count();
  const leo::GeoPoint amsterdam{52.37, 4.90};
  const TerminalId v1 = fleet.add_vantage(amsterdam);
  const TerminalId v2 = fleet.add_vantage(amsterdam);
  EXPECT_EQ(fleet.vantage_count(), 2u);
  EXPECT_EQ(fleet.vantage_cell(v1), fleet.vantage_cell(v2));
  EXPECT_EQ(fleet.cell_count(), hot0 + 1) << "co-resident vantages share one hot cell";

  const TimePoint now = sim.now();
  const double f1 = fleet.vantage_available_fraction(v1, CellArbiter::kDown, now);
  const double f2 = fleet.vantage_available_fraction(v2, CellArbiter::kDown, now);
  EXPECT_GT(f1, 0.0);
  EXPECT_DOUBLE_EQ(f1, f2) << "equal weights split the elastic pool evenly";
  CellArbiter* arb = fleet.arbiter(fleet.vantage_cell(v1));
  ASSERT_NE(arb, nullptr);
  EXPECT_NEAR(f1 + f2, arb->available_fraction(CellArbiter::kDown, now), 1e-12);

  // A foreground excursion through the vantage cell must not demote it.
  ASSERT_TRUE(fleet.set_foreground_position(amsterdam, sim.now()));
  ASSERT_TRUE(fleet.set_foreground_position(access.config().terminal, sim.now()));
  EXPECT_NE(fleet.arbiter(fleet.vantage_cell(v1)), nullptr)
      << "pinned cells survive demotion";
  EXPECT_EQ(fleet.cell_count(), hot0 + 1);
}

}  // namespace
}  // namespace slp::fleet
