#include <gtest/gtest.h>

#include "geo/geo_access.hpp"
#include "sim/network.hpp"
#include "web/browser.hpp"
#include "web/page.hpp"
#include "web/server.hpp"

namespace slp::web {
namespace {

using namespace slp::literals;
using sim::make_addr;

// ------------------------------------------------------------ SiteCatalog

TEST(SiteCatalog, GeneratesRequestedCount) {
  const SiteCatalog catalog = SiteCatalog::generate(120, Rng{1});
  EXPECT_EQ(catalog.size(), 120u);
}

TEST(SiteCatalog, DeterministicPerSeed) {
  const SiteCatalog a = SiteCatalog::generate(10, Rng{2});
  const SiteCatalog b = SiteCatalog::generate(10, Rng{2});
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a.site(i).total_bytes(), b.site(i).total_bytes());
    EXPECT_EQ(a.site(i).objects.size(), b.site(i).objects.size());
  }
}

TEST(SiteCatalog, AggregateStatisticsMatchWebConsensus) {
  const SiteCatalog catalog = SiteCatalog::generate(120, Rng{3});
  double total_objects = 0;
  double total_origins = 0;
  double total_mb = 0;
  for (const WebPage& page : catalog.sites()) {
    total_objects += static_cast<double>(page.objects.size());
    total_origins += page.num_origins;
    total_mb += static_cast<double>(page.total_bytes()) / 1e6;
    EXPECT_GE(page.num_origins, 1);
    EXPECT_LE(page.num_origins, 40);
    EXPECT_GT(page.above_fold_bytes(), 0u);
    EXPECT_LE(page.above_fold_bytes(), page.total_bytes());
    for (const WebObject& object : page.objects) {
      EXPECT_GE(object.origin, 0);
      EXPECT_LT(object.origin, page.num_origins);
    }
  }
  EXPECT_NEAR(total_objects / 120.0, 60.0, 20.0);   // ~40-80 requests
  EXPECT_NEAR(total_origins / 120.0, 15.0, 6.0);    // ~15 origins
  EXPECT_NEAR(total_mb / 120.0, 2.0, 1.2);          // ~1-3 MB pages
}

TEST(SiteCatalog, ObjectsOnOriginSumsToTotal) {
  const SiteCatalog catalog = SiteCatalog::generate(5, Rng{4});
  for (const WebPage& page : catalog.sites()) {
    int sum = 0;
    for (int origin = 0; origin < page.num_origins; ++origin) {
      sum += page.objects_on_origin(origin);
    }
    EXPECT_EQ(sum, static_cast<int>(page.objects.size()));
  }
}

// ------------------------------------------------------------ Browser on a fast path

constexpr sim::Ipv4Addr kWebServerAddr = make_addr(203, 0, 113, 200);

class BrowserTest : public ::testing::Test {
 protected:
  void build(DataRate rate, Duration delay) {
    client_ = &net_.add_host("client", make_addr(10, 0, 0, 2));
    server_host_ = &net_.add_host("webserver", kWebServerAddr);
    net_.connect(client_->uplink(), server_host_->uplink(),
                 sim::Network::symmetric(rate, delay, 4 * 1024 * 1024));
    client_stack_ = std::make_unique<tcp::TcpStack>(*client_);
    server_stack_ = std::make_unique<tcp::TcpStack>(*server_host_);
    server_ = std::make_unique<WebServer>(*server_stack_, sim_.fork_rng("webserver"));
    Browser::Config bcfg;
    bcfg.server_addr = kWebServerAddr;
    browser_ = std::make_unique<Browser>(*client_stack_, *server_, bcfg);
  }

  sim::Simulator sim_{41};
  sim::Network net_{sim_};
  sim::Host* client_ = nullptr;
  sim::Host* server_host_ = nullptr;
  std::unique_ptr<tcp::TcpStack> client_stack_;
  std::unique_ptr<tcp::TcpStack> server_stack_;
  std::unique_ptr<WebServer> server_;
  std::unique_ptr<Browser> browser_;
};

TEST_F(BrowserTest, VisitCompletesOnFastPath) {
  build(DataRate::gbps(1), 4_ms);
  const SiteCatalog catalog = SiteCatalog::generate(3, Rng{5});
  Browser::VisitResult result;
  bool done = false;
  browser_->visit(catalog.site(0), [&](const Browser::VisitResult& r) {
    result = r;
    done = true;
  });
  sim_.run_until(TimePoint::epoch() + Duration::minutes(2));
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.complete);
  // Wired-like: onLoad of roughly a second (think times dominate).
  EXPECT_GT(result.on_load.to_seconds(), 0.2);
  EXPECT_LT(result.on_load.to_seconds(), 4.0);
  EXPECT_GT(result.connections_opened, 3);
  // SpeedIndex <= onLoad by construction.
  EXPECT_LE(result.speed_index, result.on_load);
  EXPECT_GT(result.speed_index, Duration::zero());
  // Setup on a 8ms-RTT path: 2 RTT + processing, well under 100 ms.
  EXPECT_LT(result.mean_connection_setup.to_millis(), 100.0);
  EXPECT_GT(result.mean_connection_setup.to_millis(), 16.0);
}

TEST_F(BrowserTest, SequentialVisitsReuseBrowser) {
  build(DataRate::gbps(1), 4_ms);
  const SiteCatalog catalog = SiteCatalog::generate(3, Rng{6});
  int completed = 0;
  browser_->visit(catalog.site(0), [&](const Browser::VisitResult& r) {
    EXPECT_TRUE(r.complete);
    ++completed;
    browser_->visit(catalog.site(1), [&](const Browser::VisitResult& r2) {
      EXPECT_TRUE(r2.complete);
      ++completed;
    });
  });
  sim_.run_until(TimePoint::epoch() + Duration::minutes(4));
  EXPECT_EQ(completed, 2);
}

TEST_F(BrowserTest, SlowerPathGivesLargerOnLoadAndSetup) {
  build(DataRate::mbps(50), 30_ms);
  const SiteCatalog catalog = SiteCatalog::generate(3, Rng{5});
  Browser::VisitResult slow;
  bool done = false;
  browser_->visit(catalog.site(0), [&](const Browser::VisitResult& r) {
    slow = r;
    done = true;
  });
  sim_.run_until(TimePoint::epoch() + Duration::minutes(2));
  ASSERT_TRUE(done);
  ASSERT_TRUE(slow.complete);
  // 60ms RTT: setup ~2 RTT = 120ms+.
  EXPECT_GT(slow.mean_connection_setup.to_millis(), 120.0);
  EXPECT_GT(slow.on_load.to_seconds(), 0.8);
}

TEST_F(BrowserTest, TimeoutReportsIncompleteVisit) {
  build(DataRate::gbps(1), 4_ms);
  // Black-hole the path after connect by replacing the visit target with an
  // address nobody serves: the SYNs die as unreachable-but-silent (no route
  // -> host error comes back, but the browser only waits).
  const SiteCatalog catalog = SiteCatalog::generate(1, Rng{7});
  Browser::Config bcfg;
  bcfg.server_addr = make_addr(203, 0, 113, 201);  // nothing listens here
  bcfg.visit_timeout = Duration::seconds(5);
  Browser dead_browser{*client_stack_, *server_, bcfg};
  Browser::VisitResult result;
  bool done = false;
  dead_browser.visit(catalog.site(0), [&](const Browser::VisitResult& r) {
    result = r;
    done = true;
  });
  sim_.run_until(TimePoint::epoch() + Duration::minutes(1));
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.complete);
  EXPECT_NEAR(result.on_load.to_seconds(), 5.0, 0.01);
}

// ------------------------------------------------------------ Browser over GEO

TEST(BrowserGeo, SatComVisitIsDominatedByHandshakes) {
  sim::Simulator sim{43};
  sim::Network net{sim};
  geo::GeoAccess access{net, geo::GeoAccess::Config{}};
  sim::Host& server_host = net.add_host("webserver", kWebServerAddr);
  sim::Interface& pop_if = access.pop().add_interface(make_addr(203, 0, 113, 1));
  net.connect(pop_if, server_host.uplink(),
              sim::Network::symmetric(DataRate::gbps(10), Duration::from_millis(2)));
  access.pop().routes().add_route(make_addr(203, 0, 113, 0), 24, pop_if);

  tcp::TcpStack client_stack{access.client()};
  tcp::TcpStack server_stack{server_host};
  WebServer server{server_stack, sim.fork_rng("webserver")};
  Browser::Config bcfg;
  bcfg.server_addr = kWebServerAddr;
  bcfg.visit_timeout = Duration::seconds(120);
  Browser browser{client_stack, server, bcfg};

  const SiteCatalog catalog = SiteCatalog::generate(3, Rng{8});
  Browser::VisitResult result;
  bool done = false;
  browser.visit(catalog.site(1), [&](const Browser::VisitResult& r) {
    result = r;
    done = true;
  });
  sim.run_until(TimePoint::epoch() + Duration::minutes(5));
  ASSERT_TRUE(done);
  ASSERT_TRUE(result.complete);
  // TCP (1 RTT) + TLS (2 RTT) at ~590ms: around 1.8s per connection setup —
  // the paper measured 2030ms on its SatCom link.
  EXPECT_GT(result.mean_connection_setup.to_seconds(), 1.6);
  EXPECT_LT(result.mean_connection_setup.to_seconds(), 2.4);
  // onLoad around the paper's ~8-14s band.
  EXPECT_GT(result.on_load.to_seconds(), 5.0);
  EXPECT_LT(result.on_load.to_seconds(), 20.0);
  EXPECT_LE(result.speed_index, result.on_load);
}

}  // namespace
}  // namespace slp::web
