#include <gtest/gtest.h>

#include "emu/errant.hpp"
#include "sim/network.hpp"

namespace slp::emu {
namespace {

using sim::make_addr;

TEST(ErrantProfile, FitRecoversLognormalMedians) {
  Rng rng{61};
  stats::Samples down;
  stats::Samples up;
  stats::Samples rtt;
  for (int i = 0; i < 5000; ++i) {
    down.add(rng.lognormal(std::log(178.0), 0.3));
    up.add(rng.lognormal(std::log(17.0), 0.35));
    rtt.add(rng.lognormal(std::log(50.0), 0.2));
  }
  const ErrantProfile profile = ErrantProfile::fit("starlink", down, up, rtt, 0.005);
  EXPECT_NEAR(profile.down_mbps().median(), 178.0, 10.0);
  EXPECT_NEAR(profile.up_mbps().median(), 17.0, 1.0);
  EXPECT_NEAR(profile.rtt_ms().median(), 50.0, 3.0);
  EXPECT_DOUBLE_EQ(profile.loss_ratio(), 0.005);
}

TEST(ErrantProfile, MedianAndSampleAreConsistent) {
  const ErrantProfile profile = profile_4g_good();
  const NetemParams median = profile.median();
  EXPECT_NEAR(median.rate_down.to_mbps(), 29.5, 0.1);
  EXPECT_NEAR(median.rate_up.to_mbps(), 14.0, 0.1);
  EXPECT_NEAR(median.delay_one_way.to_millis() * 2.0, 45.0, 0.5);

  Rng rng{62};
  stats::Samples sampled;
  for (int i = 0; i < 4000; ++i) sampled.add(profile.sample(rng).rate_down.to_mbps());
  EXPECT_NEAR(sampled.median(), 29.5, 2.0);
}

TEST(ErrantProfile, ReferenceProfilesAreOrderedSensibly) {
  EXPECT_GT(profile_4g_good().down_mbps().median(), profile_3g().down_mbps().median());
  EXPECT_GT(profile_geo_satcom().rtt_ms().median(), profile_4g_good().rtt_ms().median());
  EXPECT_LT(profile_wired().rtt_ms().median(), profile_4g_good().rtt_ms().median());
}

TEST(NetemParams, CommandsContainAllKnobs) {
  NetemParams params;
  params.profile = "test";
  params.rate_down = DataRate::mbps(178);
  params.rate_up = DataRate::mbps(17);
  params.delay_one_way = Duration::from_millis(25);
  params.jitter = Duration::from_millis(5);
  params.loss_ratio = 0.004;
  const auto cmds = params.netem_commands("eth0", "ifb0");
  ASSERT_EQ(cmds.size(), 3u);
  EXPECT_NE(cmds[0].find("17mbit"), std::string::npos);     // egress=upload
  EXPECT_NE(cmds[0].find("25ms"), std::string::npos);
  EXPECT_NE(cmds[0].find("loss 0.4%"), std::string::npos);
  EXPECT_NE(cmds[1].find("ifb0"), std::string::npos);
  EXPECT_NE(cmds[2].find("178mbit"), std::string::npos);    // ingress=download
}

TEST(Apply, ConfiguresLinkRatesDelaysAndLoss) {
  sim::Simulator sim{63};
  sim::Network net{sim};
  sim::Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
  sim::Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
  sim::Link& link = net.connect(a.uplink(), b.uplink(),
                                sim::Network::symmetric(DataRate::gbps(1), Duration::millis(1)));

  NetemParams params = profile_geo_satcom().median();
  std::vector<std::unique_ptr<sim::LossModel>> loss_models;
  apply(params, link, loss_models, sim.fork_rng("emu"));
  EXPECT_EQ(loss_models.size(), 2u);

  // Verify the emulated RTT end to end with a ping.
  Duration rtt = Duration::zero();
  a.bind_echo_reply(1, [&](const sim::Packet&) { rtt = sim.now() - TimePoint::epoch(); });
  sim::Packet ping;
  ping.dst = b.addr();
  ping.proto = sim::Protocol::kIcmp;
  ping.size_bytes = 64;
  ping.icmp = sim::IcmpHeader{sim::IcmpType::kEchoRequest, 1, 0, nullptr};
  a.send(std::move(ping));
  sim.run();
  EXPECT_NEAR(rtt.to_millis(), 600.0, 5.0);
}

TEST(Apply, ZeroLossClearsModels) {
  sim::Simulator sim{64};
  sim::Network net{sim};
  sim::Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
  sim::Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
  sim::Link& link = net.connect(a.uplink(), b.uplink(),
                                sim::Network::symmetric(DataRate::gbps(1), Duration::millis(1)));
  NetemParams params = profile_wired().median();
  params.loss_ratio = 0.0;
  std::vector<std::unique_ptr<sim::LossModel>> loss_models;
  apply(params, link, loss_models, sim.fork_rng("emu"));
  EXPECT_TRUE(loss_models.empty());
}

TEST(ErrantProfile, DescribeMentionsName) {
  EXPECT_NE(profile_3g().describe().find("3g"), std::string::npos);
}

}  // namespace
}  // namespace slp::emu
