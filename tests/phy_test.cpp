#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "phy/gilbert_elliott.hpp"
#include "phy/load_process.hpp"
#include "phy/outage.hpp"

namespace slp::phy {
namespace {

using namespace slp::literals;
using sim::Packet;

Packet dummy_packet() {
  Packet p;
  p.size_bytes = 1200;
  return p;
}

// ------------------------------------------------------------ GilbertElliott

TEST(GilbertElliott, LosslessWhenAlwaysGood) {
  GilbertElliott::Config cfg;
  cfg.mean_good = Duration::hours(1000);
  cfg.loss_good = 0.0;
  GilbertElliott ge{cfg, Rng{1}};
  const Packet p = dummy_packet();
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_FALSE(ge.should_drop(TimePoint::epoch() + Duration::millis(i), p));
  }
  EXPECT_EQ(ge.stats().dropped, 0u);
}

TEST(GilbertElliott, LongRunLossRateMatchesStationaryChain) {
  GilbertElliott::Config cfg;
  cfg.mean_good = Duration::millis(90);
  cfg.mean_bad = Duration::millis(10);
  cfg.loss_good = 0.0;
  cfg.loss_bad = 1.0;
  GilbertElliott ge{cfg, Rng{2}};
  const Packet p = dummy_packet();
  std::uint64_t drops = 0;
  const int n = 2'000'000;
  for (int i = 0; i < n; ++i) {
    // one packet every 100us -> samples the chain densely
    if (ge.should_drop(TimePoint::epoch() + Duration::micros(100) * static_cast<double>(i), p)) {
      ++drops;
    }
  }
  // Stationary P[bad] = 10 / (90+10) = 0.10.
  const double rate = static_cast<double>(drops) / n;
  EXPECT_NEAR(rate, 0.10, 0.01);
}

TEST(GilbertElliott, BadStateProducesConsecutiveDrops) {
  GilbertElliott::Config cfg;
  cfg.mean_good = Duration::millis(50);
  cfg.mean_bad = Duration::millis(5);
  cfg.loss_bad = 1.0;
  GilbertElliott ge{cfg, Rng{3}};
  const Packet p = dummy_packet();
  // Count burst lengths of consecutive drops at 100us spacing.
  int max_burst = 0;
  int cur = 0;
  for (int i = 0; i < 1'000'000; ++i) {
    if (ge.should_drop(TimePoint::epoch() + Duration::micros(100) * static_cast<double>(i), p)) {
      max_burst = std::max(max_burst, ++cur);
    } else {
      cur = 0;
    }
  }
  // 5ms bad state at 100us spacing -> bursts of tens of packets must occur.
  EXPECT_GE(max_burst, 10);
}

TEST(GilbertElliott, DeterministicPerSeed) {
  GilbertElliott::Config cfg;
  cfg.mean_good = Duration::millis(10);
  cfg.mean_bad = Duration::millis(10);
  cfg.loss_bad = 0.5;
  GilbertElliott a{cfg, Rng{4}};
  GilbertElliott b{cfg, Rng{4}};
  const Packet p = dummy_packet();
  for (int i = 0; i < 10'000; ++i) {
    const TimePoint t = TimePoint::epoch() + Duration::micros(37) * static_cast<double>(i);
    EXPECT_EQ(a.should_drop(t, p), b.should_drop(t, p));
  }
}

// ------------------------------------------------------------ OutageProcess

TEST(OutageProcess, DropsEverythingInsideWindow) {
  OutageProcess::Config cfg;
  cfg.mean_interarrival = Duration::seconds(30);
  cfg.duration_mu = 0.5;
  cfg.duration_sigma = 0.2;
  OutageProcess outage{cfg, Rng{5}};
  const Packet p = dummy_packet();
  // Scan 10 minutes at 1ms; there must be at least one outage and inside it
  // every packet must drop.
  bool saw_outage = false;
  for (int i = 0; i < 600'000; ++i) {
    const TimePoint t = TimePoint::epoch() + Duration::millis(i);
    const bool in = outage.in_outage(t);
    const bool dropped = outage.should_drop(t, p);
    EXPECT_EQ(in, dropped);
    saw_outage |= in;
  }
  EXPECT_TRUE(saw_outage);
  EXPECT_GT(outage.stats().dropped, 0u);
}

TEST(OutageProcess, OutagesAreRareRelativeToUptime) {
  OutageProcess::Config cfg;
  cfg.mean_interarrival = Duration::hours(2);
  OutageProcess outage{cfg, Rng{6}};
  const Packet p = dummy_packet();
  std::uint64_t drops = 0;
  const int n = 1'000'000;  // one sample per 100ms over ~28 hours
  for (int i = 0; i < n; ++i) {
    if (outage.should_drop(TimePoint::epoch() + Duration::millis(100) * static_cast<double>(i),
                           p)) {
      ++drops;
    }
  }
  // Expected duty cycle ~ 1.4s / 7200s ~ 2e-4.
  EXPECT_LT(static_cast<double>(drops) / n, 0.005);
}

TEST(CompositeLossModel, DropsWhenAnyChildDrops) {
  class Never final : public sim::LossModel {
   public:
    bool should_drop(TimePoint, const Packet&) override { return false; }
  };
  class Always final : public sim::LossModel {
   public:
    bool should_drop(TimePoint, const Packet&) override { return true; }
  };
  Never never;
  Always always;
  CompositeLossModel both{{&never, &always}};
  CompositeLossModel none{{&never, &never}};
  const Packet p = dummy_packet();
  EXPECT_TRUE(both.should_drop(TimePoint::epoch(), p));
  EXPECT_FALSE(none.should_drop(TimePoint::epoch(), p));
}

TEST(CompositeLossModel, AllChildrenAdvanceEvenWhenEarlierChildDrops) {
  // The composite must consult *every* child for every packet — a dropping
  // child earlier in the chain must not short-circuit the ones after it, or
  // their clocks/stats would silently fall behind (scenario gates rely on
  // this to keep the stochastic models advancing through an outage window).
  class Counting final : public sim::LossModel {
   public:
    explicit Counting(bool drop) : drop_{drop} {}
    bool should_drop(TimePoint, const Packet&) override {
      calls++;
      return drop_;
    }
    int calls = 0;

   private:
    bool drop_;
  };
  Counting first{true};   // always drops
  Counting second{false};
  Counting third{true};
  CompositeLossModel chain{{&first, &second, &third}};
  const Packet p = dummy_packet();
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(chain.should_drop(TimePoint::epoch() + Duration::millis(i), p));
  }
  EXPECT_EQ(first.calls, n);
  EXPECT_EQ(second.calls, n);
  EXPECT_EQ(third.calls, n);
}

TEST(CompositeLossModel, StochasticChildStatsUnaffectedByDroppingSibling) {
  // A GE chain composed behind an always-dropping gate must see exactly the
  // packets (and draw exactly the randomness) it would see standing alone.
  GilbertElliott::Config cfg;
  cfg.mean_good = Duration::millis(50);
  cfg.mean_bad = Duration::millis(10);
  cfg.loss_bad = 0.7;
  GilbertElliott alone{cfg, Rng{11}};
  GilbertElliott behind{cfg, Rng{11}};
  GateLoss closed_gate;
  closed_gate.set_open(false);
  CompositeLossModel chain{{&closed_gate, &behind}};
  const Packet p = dummy_packet();
  for (int i = 0; i < 100'000; ++i) {
    const TimePoint t = TimePoint::epoch() + Duration::micros(250) * static_cast<double>(i);
    (void)alone.should_drop(t, p);
    EXPECT_TRUE(chain.should_drop(t, p));  // the gate drops everything
  }
  EXPECT_EQ(alone.stats().dropped, behind.stats().dropped);
  EXPECT_EQ(closed_gate.dropped(), 100'000u);
}

TEST(GateLoss, OpenPassesClosedDrops) {
  GateLoss gate;
  const Packet p = dummy_packet();
  EXPECT_TRUE(gate.is_open());
  EXPECT_FALSE(gate.should_drop(TimePoint::epoch(), p));
  gate.set_open(false);
  EXPECT_TRUE(gate.should_drop(TimePoint::epoch(), p));
  gate.set_open(true);
  EXPECT_FALSE(gate.should_drop(TimePoint::epoch(), p));
  EXPECT_EQ(gate.dropped(), 1u);
}

TEST(BernoulliLoss, MatchesProbability) {
  BernoulliLoss loss{0.2, Rng{7}};
  const Packet p = dummy_packet();
  int drops = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (loss.should_drop(TimePoint::epoch(), p)) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.2, 0.01);
}

TEST(OutageProcess, DurationMedianMatchesLognormal) {
  // Outage durations are lognormal(mu, sigma) seconds, so the *median*
  // duration is exp(mu) exactly (the mean would be inflated by the tail).
  OutageProcess::Config cfg;
  cfg.mean_interarrival = Duration::seconds(20);
  cfg.duration_mu = 0.0;  // median = exp(0) = 1 s
  cfg.duration_sigma = 0.4;
  OutageProcess outage{cfg, Rng{21}};
  // Scan several hours on a 5ms grid and measure each contiguous run of
  // in_outage time.
  std::vector<double> durations_s;
  int run = 0;
  const int n = 4 * 3600 * 200;  // 4 hours at 5 ms
  for (int i = 0; i < n; ++i) {
    if (outage.in_outage(TimePoint::epoch() + Duration::millis(5) * static_cast<double>(i))) {
      ++run;
    } else if (run > 0) {
      durations_s.push_back(run * 0.005);
      run = 0;
    }
  }
  ASSERT_GE(durations_s.size(), 100u);
  std::sort(durations_s.begin(), durations_s.end());
  const double median = durations_s[durations_s.size() / 2];
  EXPECT_NEAR(median, 1.0, 0.25);
}

TEST(OutageProcess, InOutageAdvancesLazilyWithoutCountingDrops) {
  OutageProcess::Config cfg;
  cfg.mean_interarrival = Duration::seconds(10);
  OutageProcess outage{cfg, Rng{22}};
  EXPECT_EQ(outage.stats().outages_started, 0u);
  // One distant query advances the window chain past every skipped outage —
  // but querying is not dropping, so the drop counter must stay untouched.
  (void)outage.in_outage(TimePoint::epoch() + Duration::hours(1));
  EXPECT_GT(outage.stats().outages_started, 100u);
  EXPECT_EQ(outage.stats().dropped, 0u);
}

TEST(OutageProcess, TraceEmitsExactlyOneSpanPerWindow) {
  obs::Options opts;
  opts.trace = true;
  opts.metrics = true;
  obs::Recorder rec{opts};
  OutageProcess::Config cfg;
  cfg.mean_interarrival = Duration::seconds(15);
  OutageProcess outage{cfg, Rng{23}};
  outage.set_obs(&rec);
  const Packet p = dummy_packet();
  for (int i = 0; i < 60 * 100; ++i) {
    (void)outage.should_drop(TimePoint::epoch() + Duration::millis(10) * static_cast<double>(i),
                             p);
  }
  std::uint64_t spans = 0;
  for (const auto& ev : rec.trace().events()) {
    if (ev.category == "phy.outage" && ev.phase == 'X') ++spans;
  }
  // One span per drawn window: the constructor's first window (emitted by
  // set_obs) plus one per advance_to() replacement.
  EXPECT_EQ(spans, outage.stats().outages_started + 1);
}

// ------------------------------------------------------------ LoadProcess

TEST(LoadProcess, StaysInBounds) {
  LoadProcess::Config cfg;
  cfg.mean_utilization = 0.3;
  cfg.volatility = 0.2;  // deliberately large to stress the clamp
  LoadProcess load{cfg, Rng{8}};
  for (int i = 0; i < 100'000; ++i) {
    const double u = load.utilization(TimePoint::epoch() + Duration::seconds(i));
    EXPECT_GE(u, cfg.floor);
    EXPECT_LE(u, cfg.ceiling);
  }
}

TEST(LoadProcess, HoversAroundMean) {
  LoadProcess::Config cfg;
  cfg.mean_utilization = 0.25;
  LoadProcess load{cfg, Rng{9}};
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    sum += load.utilization(TimePoint::epoch() + Duration::seconds(10) * static_cast<double>(i));
  }
  EXPECT_NEAR(sum / n, 0.25, 0.05);
}

TEST(LoadProcess, SameTimeSameValue) {
  LoadProcess load{LoadProcess::Config{}, Rng{10}};
  const TimePoint t = TimePoint::epoch() + Duration::hours(3);
  const double u1 = load.utilization(t);
  // Query far ahead, then re-query the old time: cache must be stable.
  (void)load.utilization(t + Duration::hours(10));
  EXPECT_DOUBLE_EQ(load.utilization(t), u1);
}

TEST(LoadProcess, DiurnalComponentCreatesDayNightSwing) {
  LoadProcess::Config flat;
  flat.volatility = 0.0;
  LoadProcess::Config diurnal = flat;
  diurnal.diurnal_amplitude = 0.3;
  LoadProcess flat_load{flat, Rng{11}};
  LoadProcess diurnal_load{diurnal, Rng{11}};
  // Peak of the sine at 1/4 of the period.
  const TimePoint peak = TimePoint::epoch() + Duration::hours(6);
  const TimePoint trough = TimePoint::epoch() + Duration::hours(18);
  EXPECT_NEAR(flat_load.utilization(peak), flat_load.utilization(trough), 1e-12);
  EXPECT_GT(diurnal_load.utilization(peak), diurnal_load.utilization(trough) + 0.4);
}

TEST(LoadProcess, AvailableFractionComplementsUtilization) {
  LoadProcess load{LoadProcess::Config{}, Rng{12}};
  const TimePoint t = TimePoint::epoch() + Duration::minutes(5);
  EXPECT_DOUBLE_EQ(load.utilization(t) + load.available_fraction(t), 1.0);
}

TEST(LoadProcess, OverridePinsUtilizationAndResumesBitIdentically) {
  LoadProcess::Config cfg;
  LoadProcess plain{cfg, Rng{13}};
  LoadProcess surged{cfg, Rng{13}};
  // Surge for an hour, then clear. During the surge the value is pinned;
  // afterwards the trajectory must be *exactly* the unperturbed one, because
  // the AR(1) noise stays a pure function of the step index.
  surged.set_utilization_override(0.9);
  EXPECT_TRUE(surged.overridden());
  for (int i = 0; i < 360; ++i) {
    EXPECT_DOUBLE_EQ(
        surged.utilization(TimePoint::epoch() + Duration::seconds(10) * static_cast<double>(i)),
        0.9);
  }
  surged.clear_override();
  for (int i = 0; i < 2000; ++i) {
    const TimePoint t = TimePoint::epoch() + Duration::hours(1) +
                        Duration::seconds(10) * static_cast<double>(i);
    EXPECT_DOUBLE_EQ(surged.utilization(t), plain.utilization(t));
  }
}

TEST(LoadProcess, OverrideClampsToConfiguredBounds) {
  LoadProcess::Config cfg;
  cfg.floor = 0.1;
  cfg.ceiling = 0.8;
  LoadProcess load{cfg, Rng{14}};
  load.set_utilization_override(1.5);
  EXPECT_DOUBLE_EQ(load.utilization(TimePoint::epoch()), 0.8);
  load.set_utilization_override(0.0);
  EXPECT_DOUBLE_EQ(load.utilization(TimePoint::epoch()), 0.1);
}

}  // namespace
}  // namespace slp::phy
