#include <gtest/gtest.h>

#include "phy/gilbert_elliott.hpp"
#include "phy/load_process.hpp"
#include "phy/outage.hpp"

namespace slp::phy {
namespace {

using namespace slp::literals;
using sim::Packet;

Packet dummy_packet() {
  Packet p;
  p.size_bytes = 1200;
  return p;
}

// ------------------------------------------------------------ GilbertElliott

TEST(GilbertElliott, LosslessWhenAlwaysGood) {
  GilbertElliott::Config cfg;
  cfg.mean_good = Duration::hours(1000);
  cfg.loss_good = 0.0;
  GilbertElliott ge{cfg, Rng{1}};
  const Packet p = dummy_packet();
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_FALSE(ge.should_drop(TimePoint::epoch() + Duration::millis(i), p));
  }
  EXPECT_EQ(ge.stats().dropped, 0u);
}

TEST(GilbertElliott, LongRunLossRateMatchesStationaryChain) {
  GilbertElliott::Config cfg;
  cfg.mean_good = Duration::millis(90);
  cfg.mean_bad = Duration::millis(10);
  cfg.loss_good = 0.0;
  cfg.loss_bad = 1.0;
  GilbertElliott ge{cfg, Rng{2}};
  const Packet p = dummy_packet();
  std::uint64_t drops = 0;
  const int n = 2'000'000;
  for (int i = 0; i < n; ++i) {
    // one packet every 100us -> samples the chain densely
    if (ge.should_drop(TimePoint::epoch() + Duration::micros(100) * static_cast<double>(i), p)) {
      ++drops;
    }
  }
  // Stationary P[bad] = 10 / (90+10) = 0.10.
  const double rate = static_cast<double>(drops) / n;
  EXPECT_NEAR(rate, 0.10, 0.01);
}

TEST(GilbertElliott, BadStateProducesConsecutiveDrops) {
  GilbertElliott::Config cfg;
  cfg.mean_good = Duration::millis(50);
  cfg.mean_bad = Duration::millis(5);
  cfg.loss_bad = 1.0;
  GilbertElliott ge{cfg, Rng{3}};
  const Packet p = dummy_packet();
  // Count burst lengths of consecutive drops at 100us spacing.
  int max_burst = 0;
  int cur = 0;
  for (int i = 0; i < 1'000'000; ++i) {
    if (ge.should_drop(TimePoint::epoch() + Duration::micros(100) * static_cast<double>(i), p)) {
      max_burst = std::max(max_burst, ++cur);
    } else {
      cur = 0;
    }
  }
  // 5ms bad state at 100us spacing -> bursts of tens of packets must occur.
  EXPECT_GE(max_burst, 10);
}

TEST(GilbertElliott, DeterministicPerSeed) {
  GilbertElliott::Config cfg;
  cfg.mean_good = Duration::millis(10);
  cfg.mean_bad = Duration::millis(10);
  cfg.loss_bad = 0.5;
  GilbertElliott a{cfg, Rng{4}};
  GilbertElliott b{cfg, Rng{4}};
  const Packet p = dummy_packet();
  for (int i = 0; i < 10'000; ++i) {
    const TimePoint t = TimePoint::epoch() + Duration::micros(37) * static_cast<double>(i);
    EXPECT_EQ(a.should_drop(t, p), b.should_drop(t, p));
  }
}

// ------------------------------------------------------------ OutageProcess

TEST(OutageProcess, DropsEverythingInsideWindow) {
  OutageProcess::Config cfg;
  cfg.mean_interarrival = Duration::seconds(30);
  cfg.duration_mu = 0.5;
  cfg.duration_sigma = 0.2;
  OutageProcess outage{cfg, Rng{5}};
  const Packet p = dummy_packet();
  // Scan 10 minutes at 1ms; there must be at least one outage and inside it
  // every packet must drop.
  bool saw_outage = false;
  for (int i = 0; i < 600'000; ++i) {
    const TimePoint t = TimePoint::epoch() + Duration::millis(i);
    const bool in = outage.in_outage(t);
    const bool dropped = outage.should_drop(t, p);
    EXPECT_EQ(in, dropped);
    saw_outage |= in;
  }
  EXPECT_TRUE(saw_outage);
  EXPECT_GT(outage.stats().dropped, 0u);
}

TEST(OutageProcess, OutagesAreRareRelativeToUptime) {
  OutageProcess::Config cfg;
  cfg.mean_interarrival = Duration::hours(2);
  OutageProcess outage{cfg, Rng{6}};
  const Packet p = dummy_packet();
  std::uint64_t drops = 0;
  const int n = 1'000'000;  // one sample per 100ms over ~28 hours
  for (int i = 0; i < n; ++i) {
    if (outage.should_drop(TimePoint::epoch() + Duration::millis(100) * static_cast<double>(i),
                           p)) {
      ++drops;
    }
  }
  // Expected duty cycle ~ 1.4s / 7200s ~ 2e-4.
  EXPECT_LT(static_cast<double>(drops) / n, 0.005);
}

TEST(CompositeLossModel, DropsWhenAnyChildDrops) {
  class Never final : public sim::LossModel {
   public:
    bool should_drop(TimePoint, const Packet&) override { return false; }
  };
  class Always final : public sim::LossModel {
   public:
    bool should_drop(TimePoint, const Packet&) override { return true; }
  };
  Never never;
  Always always;
  CompositeLossModel both{{&never, &always}};
  CompositeLossModel none{{&never, &never}};
  const Packet p = dummy_packet();
  EXPECT_TRUE(both.should_drop(TimePoint::epoch(), p));
  EXPECT_FALSE(none.should_drop(TimePoint::epoch(), p));
}

TEST(BernoulliLoss, MatchesProbability) {
  BernoulliLoss loss{0.2, Rng{7}};
  const Packet p = dummy_packet();
  int drops = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (loss.should_drop(TimePoint::epoch(), p)) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.2, 0.01);
}

// ------------------------------------------------------------ LoadProcess

TEST(LoadProcess, StaysInBounds) {
  LoadProcess::Config cfg;
  cfg.mean_utilization = 0.3;
  cfg.volatility = 0.2;  // deliberately large to stress the clamp
  LoadProcess load{cfg, Rng{8}};
  for (int i = 0; i < 100'000; ++i) {
    const double u = load.utilization(TimePoint::epoch() + Duration::seconds(i));
    EXPECT_GE(u, cfg.floor);
    EXPECT_LE(u, cfg.ceiling);
  }
}

TEST(LoadProcess, HoversAroundMean) {
  LoadProcess::Config cfg;
  cfg.mean_utilization = 0.25;
  LoadProcess load{cfg, Rng{9}};
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    sum += load.utilization(TimePoint::epoch() + Duration::seconds(10) * static_cast<double>(i));
  }
  EXPECT_NEAR(sum / n, 0.25, 0.05);
}

TEST(LoadProcess, SameTimeSameValue) {
  LoadProcess load{LoadProcess::Config{}, Rng{10}};
  const TimePoint t = TimePoint::epoch() + Duration::hours(3);
  const double u1 = load.utilization(t);
  // Query far ahead, then re-query the old time: cache must be stable.
  (void)load.utilization(t + Duration::hours(10));
  EXPECT_DOUBLE_EQ(load.utilization(t), u1);
}

TEST(LoadProcess, DiurnalComponentCreatesDayNightSwing) {
  LoadProcess::Config flat;
  flat.volatility = 0.0;
  LoadProcess::Config diurnal = flat;
  diurnal.diurnal_amplitude = 0.3;
  LoadProcess flat_load{flat, Rng{11}};
  LoadProcess diurnal_load{diurnal, Rng{11}};
  // Peak of the sine at 1/4 of the period.
  const TimePoint peak = TimePoint::epoch() + Duration::hours(6);
  const TimePoint trough = TimePoint::epoch() + Duration::hours(18);
  EXPECT_NEAR(flat_load.utilization(peak), flat_load.utilization(trough), 1e-12);
  EXPECT_GT(diurnal_load.utilization(peak), diurnal_load.utilization(trough) + 0.4);
}

TEST(LoadProcess, AvailableFractionComplementsUtilization) {
  LoadProcess load{LoadProcess::Config{}, Rng{12}};
  const TimePoint t = TimePoint::epoch() + Duration::minutes(5);
  EXPECT_DOUBLE_EQ(load.utilization(t) + load.available_fraction(t), 1.0);
}

}  // namespace
}  // namespace slp::phy
