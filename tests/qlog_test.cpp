#include <gtest/gtest.h>

#include "quic/qlog.hpp"
#include "sim/network.hpp"
#include "stats/moods_test.hpp"
#include "util/rng.hpp"

namespace slp {
namespace {

using namespace slp::literals;
using sim::make_addr;

// ------------------------------------------------------------ QlogTrace

class QlogFixture : public ::testing::Test {
 protected:
  QlogFixture() : net_{sim_} {
    a_ = &net_.add_host("a", make_addr(10, 0, 0, 1));
    b_ = &net_.add_host("b", make_addr(10, 0, 0, 2));
    net_.connect(a_->uplink(), b_->uplink(),
                 sim::Network::symmetric(DataRate::mbps(50), 10_ms));
    ca_ = std::make_unique<quic::QuicStack>(*a_);
    cb_ = std::make_unique<quic::QuicStack>(*b_);
  }
  sim::Simulator sim_{71};
  sim::Network net_;
  sim::Host* a_ = nullptr;
  sim::Host* b_ = nullptr;
  std::unique_ptr<quic::QuicStack> ca_;
  std::unique_ptr<quic::QuicStack> cb_;
};

TEST_F(QlogFixture, RecordsSentAndAckedEvents) {
  cb_->listen(443, [](quic::QuicConnection&) {});
  quic::QuicConnection& conn = ca_->connect(b_->addr(), 443);
  quic::QlogTrace trace;
  trace.attach(conn, "test-transfer");
  conn.on_established = [&conn] { conn.send_stream(500'000); };
  sim_.run();
  EXPECT_GT(trace.count(quic::QlogTrace::EventType::kPacketSent), 350u);
  EXPECT_GT(trace.count(quic::QlogTrace::EventType::kPacketAcked), 350u);
  EXPECT_EQ(trace.count(quic::QlogTrace::EventType::kPacketLost), 0u);
  // Sent events carry sizes; acked events carry RTTs >= path RTT.
  for (const auto& event : trace.events()) {
    if (event.type == quic::QlogTrace::EventType::kPacketSent) {
      EXPECT_GT(event.bytes, 0u);
    }
    if (event.type == quic::QlogTrace::EventType::kPacketAcked) {
      EXPECT_GE(event.rtt.to_millis(), 20.0);
    }
  }
}

TEST_F(QlogFixture, JsonIsWellFormedIsh) {
  cb_->listen(443, [](quic::QuicConnection&) {});
  quic::QuicConnection& conn = ca_->connect(b_->addr(), 443);
  quic::QlogTrace trace;
  trace.attach(conn, "json-check");
  conn.on_established = [&conn] { conn.send_stream(10'000); };
  sim_.run();
  const std::string json = trace.to_json();
  EXPECT_NE(json.find("\"qlog_version\""), std::string::npos);
  EXPECT_NE(json.find("\"title\":\"json-check\""), std::string::npos);
  EXPECT_NE(json.find("transport:packet_sent"), std::string::npos);
  // Balanced braces (cheap structural check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST_F(QlogFixture, TitleWithSpecialCharactersIsEscaped) {
  cb_->listen(443, [](quic::QuicConnection&) {});
  quic::QuicConnection& conn = ca_->connect(b_->addr(), 443);
  quic::QlogTrace trace;
  trace.attach(conn, "h3 \"up\" 40MB\nrun\\2");
  conn.on_established = [&conn] { conn.send_stream(10'000); };
  sim_.run();
  const std::string json = trace.to_json();
  // The quote, backslash and newline must come out escaped, keeping the
  // document parseable.
  EXPECT_NE(json.find("\"title\":\"h3 \\\"up\\\" 40MB\\nrun\\\\2\""), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST_F(QlogFixture, TimesAreRelativeAndMonotonicPerSide) {
  cb_->listen(443, [](quic::QuicConnection&) {});
  quic::QuicConnection& conn = ca_->connect(b_->addr(), 443);
  quic::QlogTrace trace;
  trace.attach(conn, "mono");
  conn.on_established = [&conn] { conn.send_stream(100'000); };
  sim_.run();
  ASSERT_FALSE(trace.events().empty());
  TimePoint prev = trace.events().front().at;
  for (const auto& event : trace.events()) {
    EXPECT_GE(event.at, prev);
    prev = event.at;
  }
}

// ------------------------------------------------------------ KS test

TEST(KsTwoSample, SameDistributionHighP) {
  Rng rng{81};
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(rng.lognormal(3.0, 0.5));
    b.push_back(rng.lognormal(3.0, 0.5));
  }
  const auto result = stats::ks_two_sample(a, b);
  ASSERT_TRUE(result.valid);
  EXPECT_LT(result.d, 0.05);
  EXPECT_GT(result.p_value, 0.05);
}

TEST(KsTwoSample, ShiftedDistributionLowP) {
  Rng rng{82};
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(rng.normal(0.0, 1.0));
    b.push_back(rng.normal(0.5, 1.0));
  }
  const auto result = stats::ks_two_sample(a, b);
  ASSERT_TRUE(result.valid);
  EXPECT_GT(result.d, 0.15);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(KsTwoSample, EmptyInputInvalid) {
  std::vector<double> a{1.0};
  std::vector<double> empty;
  EXPECT_FALSE(stats::ks_two_sample(a, empty).valid);
  EXPECT_FALSE(stats::ks_two_sample(empty, a).valid);
}

TEST(KsTwoSample, IdenticalSamplesZeroD) {
  std::vector<double> a{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto result = stats::ks_two_sample(a, a);
  ASSERT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.d, 0.0);
  EXPECT_NEAR(result.p_value, 1.0, 1e-9);
}

}  // namespace
}  // namespace slp
