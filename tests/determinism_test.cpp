// determinism_test.cpp — the reproducibility guarantees the README promises:
// identical seeds give bit-identical campaigns; different seeds differ.
#include <gtest/gtest.h>

#include "measure/campaign.hpp"
#include "measure/testbed.hpp"
#include "obs/recorder.hpp"
#include "runner/sweep.hpp"

namespace slp::measure {
namespace {

using namespace slp::literals;

TEST(Determinism, PingCampaignIsBitIdenticalPerSeed) {
  PingCampaign::Config config;
  config.duration = Duration::minutes(45);
  config.cadence = Duration::minutes(5);
  config.epochs = false;
  config.seed = 424242;

  const auto a = PingCampaign::run(config);
  const auto b = PingCampaign::run(config);
  ASSERT_EQ(a.anchors.size(), b.anchors.size());
  EXPECT_EQ(a.pings_sent, b.pings_sent);
  EXPECT_EQ(a.pings_lost, b.pings_lost);
  for (std::size_t i = 0; i < a.anchors.size(); ++i) {
    ASSERT_EQ(a.anchors[i].rtt_ms.size(), b.anchors[i].rtt_ms.size());
    for (std::size_t k = 0; k < a.anchors[i].rtt_ms.size(); ++k) {
      EXPECT_DOUBLE_EQ(a.anchors[i].rtt_ms.values()[k], b.anchors[i].rtt_ms.values()[k])
          << "anchor " << i << " sample " << k;
    }
  }
}

TEST(Determinism, DifferentSeedsDiverge) {
  PingCampaign::Config config;
  config.duration = Duration::minutes(30);
  config.cadence = Duration::minutes(5);
  config.epochs = false;

  config.seed = 1;
  const auto a = PingCampaign::run(config);
  config.seed = 2;
  const auto b = PingCampaign::run(config);
  ASSERT_FALSE(a.anchors.empty());
  ASSERT_FALSE(a.anchors[0].rtt_ms.empty());
  ASSERT_FALSE(b.anchors[0].rtt_ms.empty());
  // At least one sample must differ (jitter streams are seed-derived).
  bool any_diff = false;
  const std::size_t n = std::min(a.anchors[0].rtt_ms.size(), b.anchors[0].rtt_ms.size());
  for (std::size_t k = 0; k < n; ++k) {
    if (a.anchors[0].rtt_ms.values()[k] != b.anchors[0].rtt_ms.values()[k]) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Determinism, SpeedtestCampaignIsBitIdenticalPerSeed) {
  SpeedtestCampaign::Config config;
  config.access = AccessKind::kStarlink;
  config.tests = 2;
  config.test_duration = Duration::seconds(6);
  config.seed = 777;
  const auto a = SpeedtestCampaign::run(config);
  const auto b = SpeedtestCampaign::run(config);
  ASSERT_FALSE(a.mbps.empty());
  // Bit-identity, not approximate equality: the replay guarantee covers
  // throughput probes exactly like the ping campaigns.
  EXPECT_EQ(a.mbps.values(), b.mbps.values());
}

TEST(Determinism, SpeedtestCampaignIsBitIdenticalOverSatCom) {
  // The SatCom path adds the GEO access and its PEP to the replayed stack.
  SpeedtestCampaign::Config config;
  config.access = AccessKind::kSatCom;
  config.tests = 2;
  config.test_duration = Duration::seconds(6);
  config.seed = 4242;
  const auto a = SpeedtestCampaign::run(config);
  const auto b = SpeedtestCampaign::run(config);
  ASSERT_FALSE(a.mbps.empty());
  EXPECT_EQ(a.mbps.values(), b.mbps.values());
}

TEST(Determinism, SpeedtestDifferentSeedsDiverge) {
  SpeedtestCampaign::Config config;
  config.access = AccessKind::kStarlink;
  config.tests = 2;
  config.test_duration = Duration::seconds(6);
  config.seed = 1;
  const auto a = SpeedtestCampaign::run(config);
  config.seed = 2;
  const auto b = SpeedtestCampaign::run(config);
  ASSERT_FALSE(a.mbps.empty());
  ASSERT_FALSE(b.mbps.empty());
  EXPECT_NE(a.mbps.values(), b.mbps.values());
}

TEST(Determinism, H3CampaignIsBitIdenticalPerSeed) {
  H3Campaign::Config config;
  config.seed = 31415;
  config.transfers = 2;
  config.bytes = 5ull * 1000 * 1000;
  config.epochs = false;
  const auto a = H3Campaign::run(config);
  const auto b = H3Campaign::run(config);
  ASSERT_FALSE(a.goodput_mbps.empty());
  EXPECT_EQ(a.goodput_mbps.values(), b.goodput_mbps.values());
  EXPECT_EQ(a.rtt_ms.values(), b.rtt_ms.values());
  EXPECT_EQ(a.loss.packets_lost, b.loss.packets_lost);
}

TEST(Determinism, MetricsAndTraceExportsAreByteIdentical) {
  // The promise CI enforces at fig2/fig5 scale, at unit-test scale: the
  // rendered --metrics/--trace documents (not just the parsed numbers) are
  // byte-identical for the same seeds, for any worker count. This is what
  // the event queue and ephemeris fast paths must preserve.
  PingCampaign::Config config;
  config.duration = Duration::minutes(30);
  config.cadence = Duration::minutes(5);
  config.epochs = false;
  config.seed = 7;
  config.obs.metrics = true;
  config.obs.trace = true;

  const auto serial = runner::run_merged<PingCampaign>({2, 1}, config);
  const auto parallel = runner::run_merged<PingCampaign>({2, 4}, config);
  const auto again = runner::run_merged<PingCampaign>({2, 4}, config);
  const std::string metrics = obs::metrics_json(serial.obs);
  EXPECT_EQ(metrics, obs::metrics_json(parallel.obs));
  EXPECT_EQ(metrics, obs::metrics_json(again.obs));
  EXPECT_FALSE(metrics.empty());
  const std::string trace = obs::trace_json(serial.obs.events);
  EXPECT_EQ(trace, obs::trace_json(parallel.obs.events));
  EXPECT_EQ(trace, obs::trace_json(again.obs.events));
  EXPECT_FALSE(serial.obs.events.empty());
}

TEST(Determinism, TestbedTopologyIsStable) {
  Testbed a{};
  Testbed b{};
  EXPECT_EQ(a.net().node_count(), b.net().node_count());
  EXPECT_EQ(a.net().link_count(), b.net().link_count());
  ASSERT_EQ(a.anchors().size(), b.anchors().size());
  for (std::size_t i = 0; i < a.anchors().size(); ++i) {
    EXPECT_EQ(a.anchor(i).name, b.anchor(i).name);
    EXPECT_EQ(a.anchor(i).host->addr(), b.anchor(i).host->addr());
  }
}

}  // namespace
}  // namespace slp::measure
