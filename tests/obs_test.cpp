#include <gtest/gtest.h>

#include <array>

#include "obs/json.hpp"
#include "obs/profile.hpp"
#include "obs/recorder.hpp"
#include "obs/registry.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace slp::obs {
namespace {

using namespace slp::literals;

// ------------------------------------------------------------------ json

TEST(Json, EscapesControlAndStructuralCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view{"\x01", 1}), "\\u0001");
  EXPECT_EQ(json_quote("x\"y"), "\"x\\\"y\"");
}

TEST(Json, NumbersAreDeterministicAndFinite) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(-0.0), "0");
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(1.0 / 0.0), "0");
  EXPECT_EQ(json_number(0.0 / 0.0), "0");
}

// -------------------------------------------------------------- registry

TEST(Registry, HandlesBindToSharedCells) {
  Registry reg;
  Counter a = reg.counter("x.count");
  Counter b = reg.counter("x.count");
  a.add();
  b.add(4);
  EXPECT_EQ(reg.counters().at("x.count"), 5u);
}

TEST(Registry, UnboundHandlesAreNoops) {
  Counter c;
  Gauge g;
  HistogramHandle h;
  EXPECT_FALSE(c.bound());
  c.add(7);
  g.set(1.0);
  h.observe(2.0);  // must not crash
}

TEST(Registry, HistogramBucketsBySortedEdges) {
  Registry reg;
  const std::array<double, 3> edges{1.0, 10.0, 100.0};
  HistogramHandle h = reg.histogram("lat", edges);
  h.observe(0.5);    // bucket 0: (-inf, 1)
  h.observe(1.0);    // bucket 1: [1, 10)
  h.observe(50.0);   // bucket 2: [10, 100)
  h.observe(100.0);  // bucket 3: [100, +inf)
  h.observe(1e9);    // bucket 3
  const HistogramCell cell = reg.histograms().at("lat");
  ASSERT_EQ(cell.counts.size(), 4u);
  EXPECT_EQ(cell.counts[0], 1u);
  EXPECT_EQ(cell.counts[1], 1u);
  EXPECT_EQ(cell.counts[2], 1u);
  EXPECT_EQ(cell.counts[3], 2u);
  EXPECT_EQ(cell.total, 5u);
}

TEST(Registry, ExpEdgesGrowGeometrically) {
  const auto edges = Registry::exp_edges(1.0, 2.0, 4);
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_DOUBLE_EQ(edges[0], 1.0);
  EXPECT_DOUBLE_EQ(edges[3], 8.0);
}

// ----------------------------------------------------------------- trace

TEST(TraceSink, DisabledSinkDropsEvents) {
  TraceSink sink{false};
  sink.instant("cat", "ev", TimePoint::epoch());
  sink.span("cat", "sp", TimePoint::epoch(), TimePoint::epoch() + 1_ms);
  EXPECT_EQ(sink.size(), 0u);
}

TEST(TraceSink, ExportsChromeTraceFormat) {
  TraceSink sink{true};
  sink.instant("leo", "handover", TimePoint::epoch() + Duration::seconds(15),
               "{\"sat\":\"3/12\"}");
  sink.span("phy.outage", "outage", TimePoint::epoch() + 1_ms,
            TimePoint::epoch() + 3_ms);
  const std::string doc = trace_json(sink.events());
  EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"sat\":\"3/12\""), std::string::npos);
  // 15 s in fractional microseconds.
  EXPECT_NE(doc.find("\"ts\":15000000.000"), std::string::npos);
  const std::string lines = trace_jsonl(sink.events());
  EXPECT_EQ(std::count(lines.begin(), lines.end(), '\n'), 2);
}

// --------------------------------------------------------------- sampler

TEST(Sampler, SamplesEveryGridPointOnce) {
  Sampler sampler{Duration::seconds(1)};
  int calls = 0;
  sampler.add_probe("x", [&calls](TimePoint) { return static_cast<double>(++calls); });
  sampler.sample_until(TimePoint::epoch() + Duration::from_millis(2500));
  sampler.sample_until(TimePoint::epoch() + Duration::from_millis(2500));  // no re-sampling
  const auto series = sampler.take();
  ASSERT_EQ(series.size(), 1u);
  // Grid points 0, 1, 2 s.
  ASSERT_EQ(series[0].points.size(), 3u);
  EXPECT_EQ(series[0].points[2].t_ns, 2'000'000'000);
  EXPECT_EQ(calls, 3);
}

TEST(Sampler, RemovedProbeKeepsItsPoints) {
  Sampler sampler{Duration::seconds(1)};
  const std::uint64_t id = sampler.add_probe("gone", [](TimePoint) { return 1.0; });
  sampler.sample_until(TimePoint::epoch() + Duration::seconds(1));
  sampler.remove_probe(id);
  sampler.sample_until(TimePoint::epoch() + Duration::seconds(3));
  const auto series = sampler.take();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].points.size(), 2u);  // only t=0s and t=1s
}

TEST(Sampler, DecimatesByStrideDoublingAtTheCap) {
  Sampler sampler{Duration::seconds(1), /*max_points=*/4};
  sampler.add_probe("x", [](TimePoint t) { return t.to_seconds(); });
  sampler.sample_until(TimePoint::epoch() + Duration::seconds(10));
  EXPECT_EQ(sampler.stride(), 4u);  // doubled at 4 points, again at 4
  const auto series = sampler.take();
  ASSERT_EQ(series.size(), 1u);
  // Grid 0..10 s at 1 s would be 11 points; the cap leaves a uniform
  // 4 s grid: t = 0, 4, 8.
  ASSERT_EQ(series[0].points.size(), 3u);
  EXPECT_EQ(series[0].points[0].t_ns, 0);
  EXPECT_EQ(series[0].points[1].t_ns, 4'000'000'000);
  EXPECT_EQ(series[0].points[2].t_ns, 8'000'000'000);
}

TEST(Sampler, DecimationIsIndependentOfSamplingChunks) {
  // The lazy pull cadence (one sample_until per dispatched event) must not
  // change what gets recorded — only sim time may.
  const auto run = [](const std::vector<std::int64_t>& stops_ms) {
    Sampler sampler{Duration::from_millis(250), /*max_points=*/8};
    sampler.add_probe("x", [](TimePoint t) { return t.to_seconds(); });
    for (const auto ms : stops_ms) {
      sampler.sample_until(TimePoint::epoch() + Duration::from_millis(static_cast<double>(ms)));
    }
    return sampler.take();
  };
  const auto one = run({9000});
  const auto many = run({40, 700, 1300, 2900, 3000, 8999, 9000});
  ASSERT_EQ(one.size(), 1u);
  ASSERT_EQ(many.size(), 1u);
  EXPECT_EQ(one[0].points, many[0].points);
}

TEST(TraceSink, RingKeepsMostRecentEventsAndCountsDrops) {
  TraceSink sink{true, /*max_events=*/3};
  for (int i = 1; i <= 5; ++i) {
    std::string name = "e";
    name += static_cast<char>('0' + i);
    sink.instant("cat", name, TimePoint::epoch() + Duration::seconds(i));
  }
  EXPECT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.dropped(), 2u);
  const auto events = sink.take();
  ASSERT_EQ(events.size(), 3u);
  // Chronological after take(), oldest events overwritten.
  EXPECT_EQ(events[0].name, "e3");
  EXPECT_EQ(events[1].name, "e4");
  EXPECT_EQ(events[2].name, "e5");
}

TEST(Simulator, LazySamplingSeesPostEventState) {
  sim::Simulator sim;
  Options opts;
  opts.sample_interval = Duration::seconds(1);
  sim.enable_obs(opts);
  double value = 0.0;
  sim.obs()->sampler()->add_probe("v", [&value](TimePoint) { return value; });
  // The event at exactly t=1s runs *before* the t=1s grid point is sampled.
  sim.schedule_at(TimePoint::epoch() + Duration::seconds(1), [&value] { value = 7.0; });
  sim.schedule_at(TimePoint::epoch() + Duration::from_millis(2500), [] {});
  sim.run();
  const Snapshot snap = sim.obs()->take_snapshot();
  ASSERT_EQ(snap.series.size(), 1u);
  ASSERT_GE(snap.series[0].points.size(), 3u);
  EXPECT_DOUBLE_EQ(snap.series[0].points[0].value, 0.0);  // t=0
  EXPECT_DOUBLE_EQ(snap.series[0].points[1].value, 7.0);  // t=1s, after the event
  EXPECT_DOUBLE_EQ(snap.series[0].points[2].value, 7.0);  // t=2s
}

TEST(Simulator, RunUntilSamplesTrailingGridPoints) {
  sim::Simulator sim;
  Options opts;
  opts.sample_interval = Duration::seconds(1);
  sim.enable_obs(opts);
  sim.obs()->sampler()->add_probe("v", [](TimePoint) { return 1.0; });
  sim.run_until(TimePoint::epoch() + Duration::from_millis(3500));
  const Snapshot snap = sim.obs()->take_snapshot();
  ASSERT_EQ(snap.series.size(), 1u);
  EXPECT_EQ(snap.series[0].points.size(), 4u);  // 0, 1, 2, 3 s
}

// ------------------------------------------------------- snapshot merging

Snapshot one_cell(std::uint64_t count, double gauge, std::int64_t event_ns) {
  Recorder rec{[] {
    Options o;
    o.metrics = true;
    o.trace = true;
    o.sample_interval = Duration::seconds(1);
    return o;
  }()};
  rec.registry().counter("c").add(count);
  rec.registry().gauge("g").set(gauge);
  const std::array<double, 2> edges{10.0, 100.0};
  rec.registry().histogram("h", edges).observe(gauge);
  rec.trace().instant("cat", "ev", TimePoint::from_ns(event_ns));
  rec.sampler()->add_probe("s", [gauge](TimePoint) { return gauge; });
  rec.sampler()->sample_until(TimePoint::epoch() + Duration::seconds(1));
  return rec.take_snapshot();
}

TEST(Snapshot, MergeIsCellOrderDeterministic) {
  Snapshot a = one_cell(3, 5.0, 100);
  Snapshot b = one_cell(4, 50.0, 200);
  Snapshot merged;
  merge(merged, a);
  merge(merged, b);
  EXPECT_EQ(merged.cells, 2u);
  EXPECT_EQ(merged.counters.at("c"), 7u);
  EXPECT_DOUBLE_EQ(merged.gauges.at("g"), 50.0);  // later cell wins
  EXPECT_EQ(merged.histograms.at("h").total, 2u);
  EXPECT_EQ(merged.histograms.at("h").counts[0], 1u);  // 5 < 10
  EXPECT_EQ(merged.histograms.at("h").counts[1], 1u);  // 10 <= 50 < 100
  ASSERT_EQ(merged.events.size(), 2u);
  EXPECT_EQ(merged.events[0].cell, 0u);
  EXPECT_EQ(merged.events[1].cell, 1u);
  ASSERT_EQ(merged.series.size(), 2u);
  EXPECT_EQ(merged.series[1].cell, 1u);
}

TEST(Snapshot, MetricsJsonIsByteIdenticalForSameData) {
  Snapshot m1;
  merge(m1, one_cell(3, 5.0, 100));
  merge(m1, one_cell(4, 50.0, 200));
  Snapshot m2;
  merge(m2, one_cell(3, 5.0, 100));
  merge(m2, one_cell(4, 50.0, 200));
  EXPECT_EQ(metrics_json(m1), metrics_json(m2));
  EXPECT_NE(metrics_json(m1).find("\"cells\": 2"), std::string::npos);
}

// --------------------------------------------------------------- profile

TEST(WallProfile, RecordsLog2Buckets) {
  WallProfile profile;
  profile.record_callback_ns(100);
  profile.record_callback_ns(100);
  profile.record_callback_ns(1'000'000);
  EXPECT_EQ(profile.events(), 3u);
  EXPECT_GE(profile.quantile_ns(0.5), 100u);
  EXPECT_GE(profile.quantile_ns(1.0), 1'000'000u);
  EXPECT_FALSE(profile.report().empty());
}

// ------------------------------------------------------ simulator plumbing

TEST(Simulator, ObsOffByDefault) {
  sim::Simulator sim;
  EXPECT_EQ(sim.obs(), nullptr);
  EXPECT_EQ(sim.wall_profile(), nullptr);
}

TEST(Simulator, ProfileCountsCallbacks) {
  sim::Simulator sim;
  Options opts;
  opts.profile = true;
  sim.enable_obs(opts);
  for (int i = 0; i < 10; ++i) sim.schedule_in(Duration::micros(i), [] {});
  sim.run();
  ASSERT_NE(sim.wall_profile(), nullptr);
  EXPECT_EQ(sim.wall_profile()->events(), 10u);
}

}  // namespace
}  // namespace slp::obs
