#include <gtest/gtest.h>

#include <array>
#include <clocale>
#include <string>
#include <vector>

#include "obs/anomaly.hpp"
#include "obs/breakdown.hpp"
#include "obs/json.hpp"
#include "obs/profile.hpp"
#include "obs/recorder.hpp"
#include "obs/registry.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace slp::obs {
namespace {

using namespace slp::literals;

// ------------------------------------------------------------------ json

TEST(Json, EscapesControlAndStructuralCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view{"\x01", 1}), "\\u0001");
  EXPECT_EQ(json_quote("x\"y"), "\"x\\\"y\"");
}

TEST(Json, NumbersAreDeterministicAndFinite) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(-0.0), "0");
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(1.0 / 0.0), "0");
  EXPECT_EQ(json_number(0.0 / 0.0), "0");
}

TEST(Json, NumbersUseDotRegardlessOfLocale) {
  // The exporters are byte-compared across processes in CI, so a host whose
  // LC_NUMERIC writes "1,5" must still produce "1.5". Skip when no
  // comma-decimal locale is installed (minimal containers).
  const std::string saved = std::setlocale(LC_ALL, nullptr);
  const char* applied = nullptr;
  for (const char* name : {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8", "fr_FR.utf8"}) {
    if (std::setlocale(LC_ALL, name) != nullptr) {
      applied = name;
      break;
    }
  }
  if (applied == nullptr) GTEST_SKIP() << "no comma-decimal locale installed";
  const std::string shortest = json_number(1.5);
  const std::string exact = json_number_exact(0.1);
  std::setlocale(LC_ALL, saved.c_str());
  EXPECT_EQ(shortest, "1.5");
  EXPECT_EQ(exact, "0.10000000000000001");  // %.17g round-trips, '.' separator
  EXPECT_EQ(exact.find(','), std::string::npos);
}

// -------------------------------------------------------------- registry

TEST(Registry, HandlesBindToSharedCells) {
  Registry reg;
  Counter a = reg.counter("x.count");
  Counter b = reg.counter("x.count");
  a.add();
  b.add(4);
  EXPECT_EQ(reg.counters().at("x.count"), 5u);
}

TEST(Registry, UnboundHandlesAreNoops) {
  Counter c;
  Gauge g;
  HistogramHandle h;
  EXPECT_FALSE(c.bound());
  c.add(7);
  g.set(1.0);
  h.observe(2.0);  // must not crash
}

TEST(Registry, HistogramBucketsBySortedEdges) {
  Registry reg;
  const std::array<double, 3> edges{1.0, 10.0, 100.0};
  HistogramHandle h = reg.histogram("lat", edges);
  h.observe(0.5);    // bucket 0: (-inf, 1)
  h.observe(1.0);    // bucket 1: [1, 10)
  h.observe(50.0);   // bucket 2: [10, 100)
  h.observe(100.0);  // bucket 3: [100, +inf)
  h.observe(1e9);    // bucket 3
  const HistogramCell cell = reg.histograms().at("lat");
  ASSERT_EQ(cell.counts.size(), 4u);
  EXPECT_EQ(cell.counts[0], 1u);
  EXPECT_EQ(cell.counts[1], 1u);
  EXPECT_EQ(cell.counts[2], 1u);
  EXPECT_EQ(cell.counts[3], 2u);
  EXPECT_EQ(cell.total, 5u);
}

TEST(Registry, ExpEdgesGrowGeometrically) {
  const auto edges = Registry::exp_edges(1.0, 2.0, 4);
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_DOUBLE_EQ(edges[0], 1.0);
  EXPECT_DOUBLE_EQ(edges[3], 8.0);
}

// ----------------------------------------------------------------- trace

TEST(TraceSink, DisabledSinkDropsEvents) {
  TraceSink sink{false};
  sink.instant("cat", "ev", TimePoint::epoch());
  sink.span("cat", "sp", TimePoint::epoch(), TimePoint::epoch() + 1_ms);
  EXPECT_EQ(sink.size(), 0u);
}

TEST(TraceSink, ExportsChromeTraceFormat) {
  TraceSink sink{true};
  sink.instant("leo", "handover", TimePoint::epoch() + Duration::seconds(15),
               "{\"sat\":\"3/12\"}");
  sink.span("phy.outage", "outage", TimePoint::epoch() + 1_ms,
            TimePoint::epoch() + 3_ms);
  const std::string doc = trace_json(sink.events());
  EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"sat\":\"3/12\""), std::string::npos);
  // 15 s in fractional microseconds.
  EXPECT_NE(doc.find("\"ts\":15000000.000"), std::string::npos);
  const std::string lines = trace_jsonl(sink.events());
  EXPECT_EQ(std::count(lines.begin(), lines.end(), '\n'), 2);
}

// --------------------------------------------------------------- sampler

TEST(Sampler, SamplesEveryGridPointOnce) {
  Sampler sampler{Duration::seconds(1)};
  int calls = 0;
  sampler.add_probe("x", [&calls](TimePoint) { return static_cast<double>(++calls); });
  sampler.sample_until(TimePoint::epoch() + Duration::from_millis(2500));
  sampler.sample_until(TimePoint::epoch() + Duration::from_millis(2500));  // no re-sampling
  const auto series = sampler.take();
  ASSERT_EQ(series.size(), 1u);
  // Grid points 0, 1, 2 s.
  ASSERT_EQ(series[0].points.size(), 3u);
  EXPECT_EQ(series[0].points[2].t_ns, 2'000'000'000);
  EXPECT_EQ(calls, 3);
}

TEST(Sampler, RemovedProbeKeepsItsPoints) {
  Sampler sampler{Duration::seconds(1)};
  const std::uint64_t id = sampler.add_probe("gone", [](TimePoint) { return 1.0; });
  sampler.sample_until(TimePoint::epoch() + Duration::seconds(1));
  sampler.remove_probe(id);
  sampler.sample_until(TimePoint::epoch() + Duration::seconds(3));
  const auto series = sampler.take();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].points.size(), 2u);  // only t=0s and t=1s
}

TEST(Sampler, DecimatesByStrideDoublingAtTheCap) {
  Sampler sampler{Duration::seconds(1), /*max_points=*/4};
  sampler.add_probe("x", [](TimePoint t) { return t.to_seconds(); });
  sampler.sample_until(TimePoint::epoch() + Duration::seconds(10));
  EXPECT_EQ(sampler.stride(), 4u);  // doubled at 4 points, again at 4
  const auto series = sampler.take();
  ASSERT_EQ(series.size(), 1u);
  // Grid 0..10 s at 1 s would be 11 points; the cap leaves a uniform
  // 4 s grid: t = 0, 4, 8.
  ASSERT_EQ(series[0].points.size(), 3u);
  EXPECT_EQ(series[0].points[0].t_ns, 0);
  EXPECT_EQ(series[0].points[1].t_ns, 4'000'000'000);
  EXPECT_EQ(series[0].points[2].t_ns, 8'000'000'000);
}

TEST(Sampler, DecimationIsIndependentOfSamplingChunks) {
  // The lazy pull cadence (one sample_until per dispatched event) must not
  // change what gets recorded — only sim time may.
  const auto run = [](const std::vector<std::int64_t>& stops_ms) {
    Sampler sampler{Duration::from_millis(250), /*max_points=*/8};
    sampler.add_probe("x", [](TimePoint t) { return t.to_seconds(); });
    for (const auto ms : stops_ms) {
      sampler.sample_until(TimePoint::epoch() + Duration::from_millis(static_cast<double>(ms)));
    }
    return sampler.take();
  };
  const auto one = run({9000});
  const auto many = run({40, 700, 1300, 2900, 3000, 8999, 9000});
  ASSERT_EQ(one.size(), 1u);
  ASSERT_EQ(many.size(), 1u);
  EXPECT_EQ(one[0].points, many[0].points);
}

TEST(TraceSink, RingKeepsMostRecentEventsAndCountsDrops) {
  TraceSink sink{true, /*max_events=*/3};
  for (int i = 1; i <= 5; ++i) {
    std::string name = "e";
    name += static_cast<char>('0' + i);
    sink.instant("cat", name, TimePoint::epoch() + Duration::seconds(i));
  }
  EXPECT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.dropped(), 2u);
  const auto events = sink.take();
  ASSERT_EQ(events.size(), 3u);
  // Chronological after take(), oldest events overwritten.
  EXPECT_EQ(events[0].name, "e3");
  EXPECT_EQ(events[1].name, "e4");
  EXPECT_EQ(events[2].name, "e5");
}

TEST(Sampler, StrideDoublesExactlyAtThePowerOfTwoCap) {
  // One grid point short of the cap: nothing decimated.
  Sampler under{Duration::seconds(1), /*max_points=*/8};
  under.add_probe("x", [](TimePoint t) { return t.to_seconds(); });
  under.sample_until(TimePoint::epoch() + Duration::seconds(6));  // t = 0..6
  EXPECT_EQ(under.stride(), 1u);
  EXPECT_EQ(under.take()[0].points.size(), 7u);
  // Landing exactly on the cap (8 = 2^3 points): exactly one halving, so the
  // retained grid is every other point of the original, ending at t=6.
  Sampler at{Duration::seconds(1), /*max_points=*/8};
  at.add_probe("x", [](TimePoint t) { return t.to_seconds(); });
  at.sample_until(TimePoint::epoch() + Duration::seconds(7));  // t = 0..7
  EXPECT_EQ(at.stride(), 2u);
  const auto series = at.take();
  ASSERT_EQ(series[0].points.size(), 4u);
  EXPECT_EQ(series[0].points[0].t_ns, 0);
  EXPECT_EQ(series[0].points[3].t_ns, 6'000'000'000);
}

TEST(TraceSink, RecentReturnsChronologicalTailAcrossWraparound) {
  TraceSink sink{true, /*max_events=*/4};
  for (int i = 1; i <= 6; ++i) {
    std::string name = "e";
    name += static_cast<char>('0' + i);
    sink.instant("cat", name, TimePoint::epoch() + Duration::seconds(i));
  }
  const auto tail = sink.recent(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].name, "e5");
  EXPECT_EQ(tail[1].name, "e6");
  const auto all = sink.recent(100);  // clamped to what the ring still holds
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].name, "e3");
  EXPECT_EQ(all[3].name, "e6");
  EXPECT_EQ(sink.size(), 4u);  // recent() is non-destructive
}

// --------------------------------------------------------------- anomaly

AnomalyDetector::Config tight_anomaly_config() {
  AnomalyDetector::Config cfg;
  cfg.window = 32;
  cfg.min_samples = 4;
  cfg.spike_factor = 4.0;
  cfg.drop_factor = 4.0;
  cfg.min_delta = 1.0;
  cfg.cooldown = Duration::seconds(10);
  return cfg;
}

TEST(AnomalyDetector, SpikeFiresOnlyAfterMinSamples) {
  AnomalyDetector det{tight_anomaly_config()};
  std::vector<AnomalyDetector::Anomaly> fired;
  det.set_callback([&fired](const AnomalyDetector::Anomaly& a) { fired.push_back(a); });
  det.observe("rtt", 0, 500.0);  // no history yet: never an anomaly
  for (int i = 1; i <= 4; ++i) {
    det.observe("rtt", i * 1'000'000'000LL, 50.0);
  }
  EXPECT_EQ(det.anomalies(), 0u);
  det.observe("rtt", 5'000'000'000LL, 500.0);  // 500 > 4 x median(50)
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_STREQ(fired[0].kind, "spike");
  EXPECT_DOUBLE_EQ(fired[0].value, 500.0);
  EXPECT_DOUBLE_EQ(fired[0].median, 50.0);
  EXPECT_EQ(fired[0].t_ns, 5'000'000'000LL);
}

TEST(AnomalyDetector, DropFiresBelowMedianOverFactor) {
  AnomalyDetector det{tight_anomaly_config()};
  std::vector<AnomalyDetector::Anomaly> fired;
  det.set_callback([&fired](const AnomalyDetector::Anomaly& a) { fired.push_back(a); });
  for (int i = 0; i < 4; ++i) det.observe("tput", i * 1'000'000'000LL, 400.0);
  det.observe("tput", 4'000'000'000LL, 40.0);  // 40 < 400 / 4
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_STREQ(fired[0].kind, "drop");
}

TEST(AnomalyDetector, CooldownSuppressesRepeatFiresPerStream) {
  AnomalyDetector det{tight_anomaly_config()};
  for (int i = 0; i < 4; ++i) det.observe("rtt", i * 1'000'000'000LL, 50.0);
  det.observe("rtt", 4'000'000'000LL, 500.0);   // fires
  det.observe("rtt", 5'000'000'000LL, 500.0);   // within 10 s cooldown
  det.observe("rtt", 9'000'000'000LL, 500.0);   // still within
  EXPECT_EQ(det.anomalies(), 1u);
  det.observe("rtt", 20'000'000'000LL, 500.0);  // cooldown expired, median still 50
  EXPECT_EQ(det.anomalies(), 2u);
}

TEST(AnomalyDetector, MinDeltaGatesSmallRelativeSpikes) {
  AnomalyDetector det{tight_anomaly_config()};
  for (int i = 0; i < 4; ++i) det.observe("q", i * 1'000'000'000LL, 0.1);
  det.observe("q", 4'000'000'000LL, 0.5);  // 5x the median, but |delta| < 1.0
  EXPECT_EQ(det.anomalies(), 0u);
}

// -------------------------------------------------- flight recorder dumps

TEST(Recorder, AnomalyCapturesFlightDumpWithDeltasAndTraceTail) {
  Options opts;
  opts.provenance = true;  // trace ring recording is implied, export is not
  Recorder rec{opts};
  Counter handovers = rec.registry().counter("leo.handovers");
  std::int64_t comp[kTagComponents] = {};
  comp[kPropagation] = 40'000'000;
  comp[kQueue] = 10'000'000;
  // Default detector config: min_samples=16, spike_factor=4, cooldown=60s.
  for (int i = 0; i < 16; ++i) {
    rec.record_breakdown(i * 1'000'000'000LL, /*flow=*/1, comp, 50'000'000);
  }
  handovers.add(3);
  rec.trace().instant("leo", "handover", TimePoint::epoch() + Duration::seconds(16));
  std::int64_t spike[kTagComponents] = {};
  spike[kPropagation] = 40'000'000;
  spike[kHandoverStall] = 360'000'000;
  rec.record_breakdown(16'000'000'000LL, /*flow=*/1, spike, 400'000'000);
  const Snapshot snap = rec.take_snapshot();
  ASSERT_EQ(snap.flights.size(), 1u);
  const FlightDump& dump = snap.flights[0];
  EXPECT_EQ(dump.stream, "provenance.measured_ms");
  EXPECT_EQ(dump.kind, "spike");
  EXPECT_DOUBLE_EQ(dump.value, 400.0);
  ASSERT_EQ(dump.counter_deltas.size(), 1u);
  EXPECT_EQ(dump.counter_deltas[0].first, "leo.handovers");
  EXPECT_EQ(dump.counter_deltas[0].second, 3u);
  ASSERT_EQ(dump.events.size(), 1u);
  EXPECT_EQ(dump.events[0].name, "handover");
  EXPECT_EQ(snap.counters.at("obs.anomaly.count"), 1u);
  // The trace ring existed only to feed flight dumps; without --trace it
  // must not leak into the trace export.
  EXPECT_TRUE(snap.events.empty());
  const std::string doc = flight_json(snap);
  EXPECT_NE(doc.find("\"stream\": \"provenance.measured_ms\""), std::string::npos);
  EXPECT_NE(doc.find("\"leo.handovers\": 3"), std::string::npos);
}

TEST(Recorder, EmptySnapshotExportsAreValidDocuments) {
  const Snapshot empty;
  EXPECT_NE(breakdown_json(empty).find("\"components\": {}"), std::string::npos);
  EXPECT_NE(breakdown_json(empty).find("\"flows\": {}"), std::string::npos);
  EXPECT_NE(flight_json(empty).find("\"flights\": []"), std::string::npos);
  EXPECT_NE(metrics_json(empty).find("\"counters\": {}"), std::string::npos);
}

TEST(Simulator, LazySamplingSeesPostEventState) {
  sim::Simulator sim;
  Options opts;
  opts.sample_interval = Duration::seconds(1);
  sim.enable_obs(opts);
  double value = 0.0;
  sim.obs()->sampler()->add_probe("v", [&value](TimePoint) { return value; });
  // The event at exactly t=1s runs *before* the t=1s grid point is sampled.
  sim.schedule_at(TimePoint::epoch() + Duration::seconds(1), [&value] { value = 7.0; });
  sim.schedule_at(TimePoint::epoch() + Duration::from_millis(2500), [] {});
  sim.run();
  const Snapshot snap = sim.obs()->take_snapshot();
  ASSERT_EQ(snap.series.size(), 1u);
  ASSERT_GE(snap.series[0].points.size(), 3u);
  EXPECT_DOUBLE_EQ(snap.series[0].points[0].value, 0.0);  // t=0
  EXPECT_DOUBLE_EQ(snap.series[0].points[1].value, 7.0);  // t=1s, after the event
  EXPECT_DOUBLE_EQ(snap.series[0].points[2].value, 7.0);  // t=2s
}

TEST(Simulator, RunUntilSamplesTrailingGridPoints) {
  sim::Simulator sim;
  Options opts;
  opts.sample_interval = Duration::seconds(1);
  sim.enable_obs(opts);
  sim.obs()->sampler()->add_probe("v", [](TimePoint) { return 1.0; });
  sim.run_until(TimePoint::epoch() + Duration::from_millis(3500));
  const Snapshot snap = sim.obs()->take_snapshot();
  ASSERT_EQ(snap.series.size(), 1u);
  EXPECT_EQ(snap.series[0].points.size(), 4u);  // 0, 1, 2, 3 s
}

// ------------------------------------------------------- snapshot merging

Snapshot one_cell(std::uint64_t count, double gauge, std::int64_t event_ns) {
  Recorder rec{[] {
    Options o;
    o.metrics = true;
    o.trace = true;
    o.sample_interval = Duration::seconds(1);
    return o;
  }()};
  rec.registry().counter("c").add(count);
  rec.registry().gauge("g").set(gauge);
  const std::array<double, 2> edges{10.0, 100.0};
  rec.registry().histogram("h", edges).observe(gauge);
  rec.trace().instant("cat", "ev", TimePoint::from_ns(event_ns));
  rec.sampler()->add_probe("s", [gauge](TimePoint) { return gauge; });
  rec.sampler()->sample_until(TimePoint::epoch() + Duration::seconds(1));
  return rec.take_snapshot();
}

TEST(Snapshot, MergeIsCellOrderDeterministic) {
  Snapshot a = one_cell(3, 5.0, 100);
  Snapshot b = one_cell(4, 50.0, 200);
  Snapshot merged;
  merge(merged, a);
  merge(merged, b);
  EXPECT_EQ(merged.cells, 2u);
  EXPECT_EQ(merged.counters.at("c"), 7u);
  EXPECT_DOUBLE_EQ(merged.gauges.at("g"), 50.0);  // later cell wins
  EXPECT_EQ(merged.histograms.at("h").total, 2u);
  EXPECT_EQ(merged.histograms.at("h").counts[0], 1u);  // 5 < 10
  EXPECT_EQ(merged.histograms.at("h").counts[1], 1u);  // 10 <= 50 < 100
  ASSERT_EQ(merged.events.size(), 2u);
  EXPECT_EQ(merged.events[0].cell, 0u);
  EXPECT_EQ(merged.events[1].cell, 1u);
  ASSERT_EQ(merged.series.size(), 2u);
  EXPECT_EQ(merged.series[1].cell, 1u);
}

TEST(Snapshot, MetricsJsonIsByteIdenticalForSameData) {
  Snapshot m1;
  merge(m1, one_cell(3, 5.0, 100));
  merge(m1, one_cell(4, 50.0, 200));
  Snapshot m2;
  merge(m2, one_cell(3, 5.0, 100));
  merge(m2, one_cell(4, 50.0, 200));
  EXPECT_EQ(metrics_json(m1), metrics_json(m2));
  EXPECT_NE(metrics_json(m1).find("\"cells\": 2"), std::string::npos);
}

// --------------------------------------------------------------- profile

TEST(WallProfile, RecordsLog2Buckets) {
  WallProfile profile;
  profile.record_callback_ns(100);
  profile.record_callback_ns(100);
  profile.record_callback_ns(1'000'000);
  EXPECT_EQ(profile.events(), 3u);
  EXPECT_GE(profile.quantile_ns(0.5), 100u);
  EXPECT_GE(profile.quantile_ns(1.0), 1'000'000u);
  EXPECT_FALSE(profile.report().empty());
}

// ------------------------------------------------------ simulator plumbing

TEST(Simulator, ObsOffByDefault) {
  sim::Simulator sim;
  EXPECT_EQ(sim.obs(), nullptr);
  EXPECT_EQ(sim.wall_profile(), nullptr);
}

TEST(Simulator, ProfileCountsCallbacks) {
  sim::Simulator sim;
  Options opts;
  opts.profile = true;
  sim.enable_obs(opts);
  for (int i = 0; i < 10; ++i) sim.schedule_in(Duration::micros(i), [] {});
  sim.run();
  ASSERT_NE(sim.wall_profile(), nullptr);
  EXPECT_EQ(sim.wall_profile()->events(), 10u);
}

}  // namespace
}  // namespace slp::obs
