#include <gtest/gtest.h>

#include "apps/h3.hpp"
#include "apps/messages.hpp"
#include "apps/ping.hpp"
#include "apps/speedtest.hpp"
#include "leo/access.hpp"
#include "sim/network.hpp"

namespace slp::apps {
namespace {

using namespace slp::literals;
using sim::make_addr;

constexpr sim::Ipv4Addr kServerAddr = make_addr(203, 0, 113, 99);

/// Plain low-jitter topology: client --(rate, delay)-- server.
class AppsTest : public ::testing::Test {
 protected:
  void build(DataRate rate, Duration delay, std::size_t queue = 1024 * 1024) {
    client_ = &net_.add_host("client", make_addr(10, 0, 0, 2));
    server_ = &net_.add_host("server", kServerAddr);
    net_.connect(client_->uplink(), server_->uplink(),
                 sim::Network::symmetric(rate, delay, queue));
  }

  sim::Simulator sim_{31};
  sim::Network net_{sim_};
  sim::Host* client_ = nullptr;
  sim::Host* server_ = nullptr;
};

// ------------------------------------------------------------ PingApp

TEST_F(AppsTest, PingMeasuresRttOnCleanPath) {
  build(DataRate::mbps(100), 25_ms);
  PingApp::Config cfg;
  cfg.target = kServerAddr;
  cfg.count = 3;
  PingApp ping{*client_, cfg};
  std::vector<PingApp::Probe> results;
  ping.on_complete = [&](const std::vector<PingApp::Probe>& r) { results = r; };
  ping.start();
  sim_.run();
  ASSERT_EQ(results.size(), 3u);
  for (const auto& probe : results) {
    EXPECT_FALSE(probe.lost);
    EXPECT_NEAR(probe.rtt.to_millis(), 50.0, 1.0);
  }
}

TEST_F(AppsTest, PingMarksLossOnBlackhole) {
  build(DataRate::mbps(100), 5_ms);
  class DropAll final : public sim::LossModel {
   public:
    bool should_drop(TimePoint, const sim::Packet&) override { return true; }
  };
  DropAll drop;
  // Rebuild with loss on forward path.
  sim::Simulator sim2;
  sim::Network net2{sim2};
  sim::Host& c2 = net2.add_host("c", make_addr(10, 0, 0, 2));
  sim::Host& s2 = net2.add_host("s", kServerAddr);
  sim::Link::Config link_cfg = sim::Network::symmetric(DataRate::mbps(100), 5_ms);
  link_cfg.a_to_b.loss = &drop;
  net2.connect(c2.uplink(), s2.uplink(), std::move(link_cfg));

  PingApp::Config cfg;
  cfg.target = kServerAddr;
  cfg.count = 2;
  PingApp ping{c2, cfg};
  std::vector<PingApp::Probe> results;
  ping.on_complete = [&](const std::vector<PingApp::Probe>& r) { results = r; };
  ping.start();
  sim2.run();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].lost);
  EXPECT_TRUE(results[1].lost);
}

TEST_F(AppsTest, TwoPingAppsDoNotCrossTalk) {
  build(DataRate::mbps(100), 10_ms);
  PingApp::Config cfg;
  cfg.target = kServerAddr;
  cfg.count = 2;
  PingApp a{*client_, cfg};
  PingApp b{*client_, cfg};
  int completions = 0;
  std::size_t total = 0;
  auto handler = [&](const std::vector<PingApp::Probe>& r) {
    ++completions;
    total += r.size();
    for (const auto& probe : r) EXPECT_FALSE(probe.lost);
  };
  a.on_complete = handler;
  b.on_complete = handler;
  a.start();
  b.start();
  sim_.run();
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(total, 4u);
}

// ------------------------------------------------------------ Speedtest

TEST_F(AppsTest, DownloadSpeedtestSaturatesLink) {
  build(DataRate::mbps(50), 15_ms, 1024 * 1024);
  tcp::TcpStack client_stack{*client_};
  tcp::TcpStack server_stack{*server_};
  SpeedtestServer server{server_stack};
  Speedtest::Config cfg;
  cfg.server = kServerAddr;
  cfg.connections = 4;
  cfg.duration = Duration::seconds(10);
  Speedtest test{client_stack, cfg};
  Speedtest::Result result;
  bool done = false;
  test.on_complete = [&](const Speedtest::Result& r) {
    result = r;
    done = true;
  };
  test.start();
  sim_.run_until(TimePoint::epoch() + 30_s);
  ASSERT_TRUE(done);
  EXPECT_EQ(result.connections_established, 4);
  EXPECT_GT(result.goodput.to_mbps(), 40.0);
  EXPECT_LE(result.goodput.to_mbps(), 50.0);
}

TEST_F(AppsTest, UploadSpeedtestSaturatesLink) {
  build(DataRate::mbps(20), 15_ms, 512 * 1024);
  tcp::TcpStack client_stack{*client_};
  tcp::TcpStack server_stack{*server_};
  SpeedtestServer server{server_stack};
  Speedtest::Config cfg;
  cfg.server = kServerAddr;
  cfg.connections = 4;
  cfg.download = false;
  cfg.duration = Duration::seconds(10);
  Speedtest test{client_stack, cfg};
  Speedtest::Result result;
  bool done = false;
  test.on_complete = [&](const Speedtest::Result& r) {
    result = r;
    done = true;
  };
  test.start();
  sim_.run_until(TimePoint::epoch() + 30_s);
  ASSERT_TRUE(done);
  EXPECT_GT(result.goodput.to_mbps(), 15.0);
  EXPECT_LE(result.goodput.to_mbps(), 20.0);
  EXPECT_GT(server.bytes_absorbed(), 10'000'000u);
}

// ------------------------------------------------------------ H3

TEST_F(AppsTest, H3DownloadCompletesAndReportsGoodput) {
  build(DataRate::mbps(100), 20_ms, 1024 * 1024);
  quic::QuicStack client_stack{*client_};
  quic::QuicStack server_stack{*server_};
  H3Server::Config scfg;
  scfg.object_bytes = 20'000'000;
  H3Server server{server_stack, scfg};
  H3Client::Config ccfg;
  ccfg.server = kServerAddr;
  ccfg.bytes = 20'000'000;
  H3Client h3{client_stack, ccfg};
  H3Client::Result result;
  bool done = false;
  h3.on_complete = [&](const H3Client::Result& r) {
    result = r;
    done = true;
  };
  h3.start();
  sim_.run_until(TimePoint::epoch() + Duration::minutes(2));
  ASSERT_TRUE(done);
  EXPECT_EQ(result.bytes, 20'000'000u);
  EXPECT_GT(result.goodput.to_mbps(), 70.0);
  EXPECT_LE(result.goodput.to_mbps(), 100.0);
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST_F(AppsTest, H3UploadCompletes) {
  build(DataRate::mbps(20), 20_ms);
  quic::QuicStack client_stack{*client_};
  quic::QuicStack server_stack{*server_};
  H3Server server{server_stack};
  H3Client::Config ccfg;
  ccfg.server = kServerAddr;
  ccfg.download = false;
  ccfg.bytes = 5'000'000;
  H3Client h3{client_stack, ccfg};
  bool done = false;
  H3Client::Result result;
  h3.on_complete = [&](const H3Client::Result& r) {
    result = r;
    done = true;
  };
  h3.start();
  sim_.run_until(TimePoint::epoch() + Duration::minutes(2));
  ASSERT_TRUE(done);
  EXPECT_GE(result.bytes, 5'000'000u);
  EXPECT_GE(server.bytes_received(), 5'000'000u);
  EXPECT_GT(result.goodput.to_mbps(), 12.0);
}

// ------------------------------------------------------------ Messages

TEST_F(AppsTest, MessageWorkloadMatchesPaperParameters) {
  build(DataRate::mbps(100), 20_ms);
  quic::QuicStack client_stack{*client_};
  quic::QuicStack server_stack{*server_};
  quic::QuicConnection* server_conn = nullptr;
  server_stack.listen(443, [&](quic::QuicConnection& c) { server_conn = &c; });
  quic::QuicConnection& conn = client_stack.connect(kServerAddr, 443);

  MessageSender::Config cfg;
  cfg.duration = Duration::seconds(10);
  MessageSender sender{conn, cfg, Rng{77}};
  conn.on_established = [&] { sender.start(); };
  sim_.run_until(TimePoint::epoch() + 30_s);
  ASSERT_NE(server_conn, nullptr);
  ASSERT_TRUE(sender.finished());
  // 25 msg/s for 10s = ~250 messages.
  EXPECT_GE(sender.messages_sent(), 248);
  EXPECT_LE(sender.messages_sent(), 252);

  MessageReceiver receiver{*server_conn};  // attached late: only for API check
  (void)receiver;
  EXPECT_EQ(server_conn->stats().messages_delivered,
            static_cast<std::uint64_t>(sender.messages_sent()));
}

TEST_F(AppsTest, MessageLatencyCollectedPerDelivery) {
  build(DataRate::mbps(100), 30_ms);
  quic::QuicStack client_stack{*client_};
  quic::QuicStack server_stack{*server_};
  MessageReceiver* receiver = nullptr;
  std::unique_ptr<MessageReceiver> receiver_holder;
  server_stack.listen(443, [&](quic::QuicConnection& c) {
    receiver_holder = std::make_unique<MessageReceiver>(c);
    receiver = receiver_holder.get();
  });
  quic::QuicConnection& conn = client_stack.connect(kServerAddr, 443);
  MessageSender::Config cfg;
  cfg.duration = Duration::seconds(4);
  MessageSender sender{conn, cfg, Rng{78}};
  conn.on_established = [&] { sender.start(); };
  sim_.run_until(TimePoint::epoch() + 20_s);
  ASSERT_NE(receiver, nullptr);
  ASSERT_GT(receiver->deliveries().size(), 90u);
  for (const auto& d : receiver->deliveries()) {
    EXPECT_GE(d.bytes, 5'000u);
    EXPECT_LE(d.bytes, 25'000u);
    // One-way floor is 30ms; messages are small so latency stays near it.
    EXPECT_GE(d.latency.to_millis(), 30.0);
    EXPECT_LT(d.latency.to_millis(), 120.0);
  }
}

TEST_F(AppsTest, MessageBitrateIsAboutThreeMbps) {
  build(DataRate::mbps(100), 10_ms);
  quic::QuicStack client_stack{*client_};
  quic::QuicStack server_stack{*server_};
  std::uint64_t bytes = 0;
  server_stack.listen(443, [&](quic::QuicConnection& c) {
    c.on_message = [&](std::uint64_t, std::uint64_t b, TimePoint) { bytes += b; };
  });
  quic::QuicConnection& conn = client_stack.connect(kServerAddr, 443);
  MessageSender::Config cfg;
  cfg.duration = Duration::seconds(20);
  MessageSender sender{conn, cfg, Rng{79}};
  conn.on_established = [&] { sender.start(); };
  sim_.run_until(TimePoint::epoch() + 40_s);
  // 25 msg/s x avg 15kB = 375 kB/s = 3 Mbit/s (the paper's figure).
  const double mbps = bytes * 8.0 / 20.0 / 1e6;
  EXPECT_NEAR(mbps, 3.0, 0.45);
}

}  // namespace
}  // namespace slp::apps
