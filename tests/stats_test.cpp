#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/ecdf.hpp"
#include "stats/histogram.hpp"
#include "stats/moods_test.hpp"
#include "stats/quantiles.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "stats/timeseries.hpp"
#include "util/rng.hpp"

namespace slp::stats {
namespace {

using slp::Duration;
using slp::TimePoint;

// ------------------------------------------------------------ Summary

TEST(StreamingSummary, BasicMoments) {
  StreamingSummary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingSummary, MergeEqualsSequential) {
  StreamingSummary a;
  StreamingSummary b;
  StreamingSummary all;
  Rng rng{11};
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingSummary, MergeWithEmpty) {
  StreamingSummary a;
  a.add(1.0);
  StreamingSummary empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

// ------------------------------------------------------------ Quantiles

TEST(Quantiles, SortedQuantileInterpolates) {
  const std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0 / 3.0), 20.0);
}

TEST(Samples, MedianOfOddAndEven) {
  Samples odd{1, 3, 2};
  EXPECT_DOUBLE_EQ(odd.median(), 2.0);
  Samples even{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(even.median(), 2.5);
}

TEST(Samples, QuantileAfterIncrementalAdds) {
  Samples s;
  for (int i = 100; i >= 1; --i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.percentile(25), 25.75, 1e-9);
  EXPECT_NEAR(s.percentile(95), 95.05, 1e-9);
  // Adding after a sort must invalidate the cache.
  s.add(1000.0);
  EXPECT_DOUBLE_EQ(s.max(), 1000.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 1000.0);
}

TEST(Samples, ConstructorFeedsStreamingSummary) {
  // Regression: the vector/initializer-list constructors used to leave the
  // streaming summary empty, so mean()/min()/max() silently returned 0.
  const Samples s{10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(s.mean(), 20.0);
  EXPECT_DOUBLE_EQ(s.min(), 10.0);
  EXPECT_DOUBLE_EQ(s.max(), 30.0);
  const Samples from_vector{std::vector<double>{4.0, 8.0}};
  EXPECT_DOUBLE_EQ(from_vector.mean(), 6.0);
  EXPECT_EQ(from_vector.summary().count(), 2u);
}

TEST(Samples, ClearResetsEverything) {
  Samples s{1, 2, 3};
  s.clear();
  EXPECT_TRUE(s.empty());
  s.add(5);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
}

TEST(Boxplot, MatchesPaperConventions) {
  Samples s;
  for (int i = 1; i <= 1000; ++i) s.add(i);
  const BoxplotSummary box = boxplot(s);
  EXPECT_EQ(box.count, 1000u);
  EXPECT_DOUBLE_EQ(box.min, 1.0);
  EXPECT_DOUBLE_EQ(box.max, 1000.0);
  EXPECT_NEAR(box.median, 500.5, 1e-9);
  EXPECT_NEAR(box.p25, 250.75, 1e-6);
  EXPECT_NEAR(box.p75, 750.25, 1e-6);
  EXPECT_NEAR(box.p5, 50.95, 1e-6);
  EXPECT_NEAR(box.p95, 950.05, 1e-6);
}

TEST(Boxplot, EmptyIsAllZero) {
  const BoxplotSummary box = boxplot(Samples{});
  EXPECT_EQ(box.count, 0u);
  EXPECT_DOUBLE_EQ(box.median, 0.0);
}

// ------------------------------------------------------------ ECDF

TEST(Ecdf, EvalIsRightContinuousStep) {
  const std::vector<double> v{1.0, 2.0, 2.0, 4.0};
  const Ecdf e{std::span{v}};
  EXPECT_DOUBLE_EQ(e.eval(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.eval(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.eval(2.0), 0.75);
  EXPECT_DOUBLE_EQ(e.eval(3.0), 0.75);
  EXPECT_DOUBLE_EQ(e.eval(4.0), 1.0);
  EXPECT_DOUBLE_EQ(e.eval(100.0), 1.0);
}

TEST(Ecdf, InverseIsSmallestValueReachingQ) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const Ecdf e{std::span{v}};
  EXPECT_DOUBLE_EQ(e.inverse(0.25), 1.0);
  EXPECT_DOUBLE_EQ(e.inverse(0.26), 2.0);
  EXPECT_DOUBLE_EQ(e.inverse(1.0), 4.0);
  EXPECT_DOUBLE_EQ(e.inverse(0.0), 1.0);
}

TEST(Ecdf, InverseRoundTripsEval) {
  Rng rng{12};
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(rng.lognormal(2.0, 0.7));
  const Ecdf e{std::span{v}};
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_GE(e.eval(e.inverse(q)), q - 1e-12);
  }
}

TEST(Ecdf, CurveSpansRange) {
  const std::vector<double> v{0.0, 10.0};
  const Ecdf e{std::span{v}};
  const auto curve = e.curve(11);
  ASSERT_EQ(curve.size(), 11u);
  EXPECT_DOUBLE_EQ(curve.front().first, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().first, 10.0);
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Ecdf, EmptyIsSafe) {
  const Ecdf e;
  EXPECT_TRUE(e.empty());
  EXPECT_DOUBLE_EQ(e.eval(1.0), 0.0);
  EXPECT_TRUE(e.curve(5).empty());
}

// ------------------------------------------------------------ Histogram

TEST(Histogram, BinningAndClamping) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.5);
  h.add(9.5);
  h.add(-3.0);   // clamps into first bin
  h.add(100.0);  // clamps into last bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(h.edge(1), 1.0);
  EXPECT_DOUBLE_EQ(h.center(0), 0.5);
}

TEST(IntHistogram, CdfOverSparseSupport) {
  IntHistogram h;
  h.add(1, 75);
  h.add(3, 20);
  h.add(120, 5);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_DOUBLE_EQ(h.cdf(0), 0.0);
  EXPECT_DOUBLE_EQ(h.cdf(1), 0.75);
  EXPECT_DOUBLE_EQ(h.cdf(2), 0.75);
  EXPECT_DOUBLE_EQ(h.cdf(3), 0.95);
  EXPECT_DOUBLE_EQ(h.cdf(119), 0.95);
  EXPECT_DOUBLE_EQ(h.cdf(120), 1.0);
  EXPECT_EQ(h.max_value(), 120u);
}

// ------------------------------------------------------------ TimeBinner

TEST(TimeBinner, SixHourBinsLikeFigure2) {
  TimeBinner binner{Duration::hours(6)};
  // Two samples in bin 0, one in bin 2 (12h..18h).
  binner.add(TimePoint::epoch() + Duration::hours(1), 50.0);
  binner.add(TimePoint::epoch() + Duration::hours(5), 60.0);
  binner.add(TimePoint::epoch() + Duration::hours(13), 45.0);
  const auto rows = binner.rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].count, 2u);
  EXPECT_DOUBLE_EQ(rows[0].median, 55.0);
  EXPECT_EQ(rows[1].start, TimePoint::epoch() + Duration::hours(12));
  EXPECT_DOUBLE_EQ(rows[1].min, 45.0);
}

TEST(TimeBinner, PercentileRowsOrdered) {
  TimeBinner binner{Duration::seconds(10)};
  for (int i = 0; i < 100; ++i) {
    binner.add(TimePoint::epoch() + Duration::seconds(3), static_cast<double>(i));
  }
  const auto rows = binner.rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_LE(rows[0].min, rows[0].p25);
  EXPECT_LE(rows[0].p25, rows[0].median);
  EXPECT_LE(rows[0].median, rows[0].p75);
  EXPECT_LE(rows[0].p75, rows[0].p95);
}

// ------------------------------------------------------------ Mood's test

TEST(GammaQ, KnownChiSquareValues) {
  // Chi-square survival: P[X > x] for k dof. Reference values from tables.
  EXPECT_NEAR(chi2_sf(3.841, 1), 0.05, 5e-4);
  EXPECT_NEAR(chi2_sf(5.991, 2), 0.05, 5e-4);
  EXPECT_NEAR(chi2_sf(0.0, 3), 1.0, 1e-12);
  EXPECT_NEAR(chi2_sf(31.41, 20), 0.05, 5e-4);
}

TEST(MoodsTest, SameMedianGivesHighPValue) {
  Rng rng{13};
  std::vector<std::vector<double>> groups(4);
  for (auto& g : groups) {
    for (int i = 0; i < 500; ++i) g.push_back(rng.normal(50.0, 5.0));
  }
  const MoodsResult r = moods_median_test(groups);
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.dof, 3u);
  EXPECT_GT(r.p_value, 0.01);
  EXPECT_NEAR(r.grand_median, 50.0, 0.5);
}

TEST(MoodsTest, ShiftedMedianGivesLowPValue) {
  Rng rng{14};
  std::vector<std::vector<double>> groups(2);
  for (int i = 0; i < 500; ++i) groups[0].push_back(rng.normal(50.0, 5.0));
  for (int i = 0; i < 500; ++i) groups[1].push_back(rng.normal(55.0, 5.0));
  const MoodsResult r = moods_median_test(groups);
  ASSERT_TRUE(r.valid);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(MoodsTest, DegenerateInputsRejected) {
  EXPECT_FALSE(moods_median_test(std::vector<std::vector<double>>{}).valid);
  std::vector<std::vector<double>> one_group{{1.0, 2.0}};
  EXPECT_FALSE(moods_median_test(one_group).valid);
  std::vector<std::vector<double>> with_empty{{1.0}, {}};
  EXPECT_FALSE(moods_median_test(with_empty).valid);
  // All identical values: nobody above the grand median -> degenerate.
  std::vector<std::vector<double>> constant{{5.0, 5.0}, {5.0, 5.0}};
  EXPECT_FALSE(moods_median_test(constant).valid);
}

// ------------------------------------------------------------ TextTable

TEST(TextTable, AlignsColumns) {
  TextTable t{{"name", "value"}};
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
  EXPECT_EQ(TextTable::pct(0.0156), "1.56%");
}

}  // namespace
}  // namespace slp::stats
