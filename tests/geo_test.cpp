#include <gtest/gtest.h>

#include "geo/geo_access.hpp"
#include "quic/quic.hpp"
#include "sim/network.hpp"
#include "tcp/tcp.hpp"

namespace slp::geo {
namespace {

using namespace slp::literals;
using sim::make_addr;

constexpr sim::Ipv4Addr kServerAddr = make_addr(203, 0, 113, 80);

/// GeoAccess plus one server behind the PoP.
class GeoTest : public ::testing::Test {
 protected:
  explicit GeoTest(GeoAccess::Config config = {}) : net_{sim_}, access_{net_, config} {
    server_ = &net_.add_host("server", kServerAddr);
    sim::Interface& pop_if = access_.pop().add_interface(make_addr(203, 0, 113, 1));
    net_.connect(pop_if, server_->uplink(),
                 sim::Network::symmetric(DataRate::gbps(10), Duration::from_millis(2)));
    access_.pop().routes().add_route(make_addr(203, 0, 113, 0), 24, pop_if);
  }

  sim::Simulator sim_{21};
  sim::Network net_;
  GeoAccess access_;
  sim::Host* server_ = nullptr;
};

TEST_F(GeoTest, PingRttIsGeostationary) {
  std::vector<double> rtts;
  for (int i = 0; i < 20; ++i) {
    sim_.schedule_at(TimePoint::epoch() + Duration::seconds(i), [&, i] {
      const TimePoint sent = sim_.now();
      access_.client().bind_echo_reply(static_cast<std::uint16_t>(i),
                                       [&, sent](const sim::Packet&) {
                                         rtts.push_back((sim_.now() - sent).to_millis());
                                       });
      sim::Packet ping;
      ping.dst = kServerAddr;
      ping.proto = sim::Protocol::kIcmp;
      ping.size_bytes = 64;
      ping.icmp = sim::IcmpHeader{sim::IcmpType::kEchoRequest, static_cast<std::uint16_t>(i), 0,
                                  nullptr};
      access_.client().send(std::move(ping));
    });
  }
  sim_.run();
  ASSERT_GE(rtts.size(), 18u);
  for (const double r : rtts) {
    EXPECT_GT(r, 560.0);  // 2x(258+22) = 560ms floor
    EXPECT_LT(r, 640.0);  // + jitter + server link
  }
}

TEST_F(GeoTest, PepAnswersSynWithinOneSatRtt) {
  // With the PEP, connection establishment costs one satellite RTT (the
  // PEP answers immediately from the gateway) rather than sat+terrestrial.
  tcp::TcpStack server_stack{*server_};
  server_stack.listen(80, [](tcp::TcpConnection&) {});
  tcp::TcpStack client_stack{access_.client()};
  TimePoint established;
  tcp::TcpConnection& conn = client_stack.connect(kServerAddr, 80);
  conn.on_established = [&] { established = sim_.now(); };
  sim_.run_until(TimePoint::epoch() + 10_s);
  ASSERT_GT(established.ns(), 0);
  const double ms = (established - TimePoint::epoch()).to_millis();
  EXPECT_GT(ms, 560.0);
  EXPECT_LT(ms, 620.0);
  EXPECT_EQ(access_.pep().stats().flows_split, 1u);
}

TEST_F(GeoTest, BulkDownloadThroughPepReachesPlanShare) {
  tcp::TcpStack server_stack{*server_};
  server_stack.listen(80, [&](tcp::TcpConnection& c) {
    c.on_data = [&c](std::uint64_t) { c.send(60'000'000); };
  });
  tcp::TcpStack client_stack{access_.client()};
  std::uint64_t got = 0;
  TimePoint ramp_done, last;
  tcp::TcpConnection& conn = client_stack.connect(kServerAddr, 80);
  conn.on_data = [&](std::uint64_t n) {
    got += n;
    if (got <= 10'000'000) ramp_done = sim_.now();  // skip rwnd-autotune ramp
    last = sim_.now();
  };
  conn.on_established = [&conn] { conn.send(300); };
  sim_.run_until(TimePoint::epoch() + 120_s);
  ASSERT_EQ(got, 60'000'000u);
  const double mbps = 50'000'000 * 8.0 / (last - ramp_done).to_seconds() / 1e6;
  // The PEP hides the 600ms RTT: steady state sits near the client's 6MB
  // receive-window cap, ~77 Mbit/s (the paper's Ookla median was 82).
  EXPECT_GT(mbps, 60.0);
  EXPECT_LE(mbps, 100.0);
}

TEST_F(GeoTest, UploadLimitedByTenMbitPlan) {
  tcp::TcpStack server_stack{*server_};
  std::uint64_t got = 0;
  TimePoint first, last;
  server_stack.listen(80, [&](tcp::TcpConnection& c) {
    c.on_data = [&](std::uint64_t n) {
      if (got == 0) first = sim_.now();
      got += n;
      last = sim_.now();
    };
  });
  tcp::TcpStack client_stack{access_.client()};
  tcp::TcpConnection& conn = client_stack.connect(kServerAddr, 80);
  conn.on_established = [&conn] { conn.send(8'000'000); };
  sim_.run_until(TimePoint::epoch() + 60_s);
  ASSERT_EQ(got, 8'000'000u);
  const double mbps = got * 8.0 / (last - first).to_seconds() / 1e6;
  EXPECT_LT(mbps, 10.0);
  EXPECT_GT(mbps, 3.0);
}

TEST_F(GeoTest, QuicPassesThroughPepUnsplit) {
  // QUIC rides UDP: the PEP must forward it untouched and split nothing.
  quic::QuicStack server_stack{*server_};
  quic::QuicStack client_stack{access_.client()};
  std::uint64_t got = 0;
  server_stack.listen(443, [&](quic::QuicConnection& c) {
    c.on_stream_data = [&](std::uint64_t n) { got += n; };
  });
  quic::QuicConnection& conn = client_stack.connect(kServerAddr, 443);
  conn.on_established = [&conn] { conn.send_stream(2'000'000); };
  sim_.run_until(TimePoint::epoch() + 120_s);
  EXPECT_EQ(got, 2'000'000u);
  EXPECT_EQ(access_.pep().stats().flows_split, 0u);
  EXPECT_GT(access_.pep().stats().forwarded_non_tcp, 0u);
}

TEST_F(GeoTest, TracerouteDoesNotRevealPep) {
  // The PEP is transparent: hops are modem NAT, gateway, (pep invisible),
  // pop, then the destination network.
  std::vector<sim::Ipv4Addr> hops;
  access_.client().add_error_listener([&](const sim::Packet& p) { hops.push_back(p.src); });
  for (std::uint8_t ttl = 1; ttl <= 4; ++ttl) {
    sim_.schedule_at(TimePoint::epoch() + Duration::seconds(2 * ttl), [&, ttl] {
      sim::Packet probe;
      probe.dst = kServerAddr;
      probe.src_port = static_cast<std::uint16_t>(40'000 + ttl);
      probe.dst_port = 33434;
      probe.proto = sim::Protocol::kUdp;
      probe.size_bytes = 60;
      probe.ttl = ttl;
      access_.client().send(std::move(probe));
    });
  }
  sim_.run();
  ASSERT_GE(hops.size(), 3u);
  EXPECT_EQ(hops[0], make_addr(192, 168, 3, 1));  // modem LAN address
  EXPECT_EQ(hops[1], make_addr(185, 44, 3, 1));   // gateway
  EXPECT_EQ(hops[2], make_addr(185, 12, 0, 254)); // pop (PEP never appears)
}

class GeoNoPepTest : public GeoTest {
 protected:
  static GeoAccess::Config no_pep() {
    GeoAccess::Config config;
    config.pep.enabled = false;
    return config;
  }
  GeoNoPepTest() : GeoTest(no_pep()) {}
};

TEST_F(GeoNoPepTest, HandshakeCostsFullEndToEndRtt) {
  tcp::TcpStack server_stack{*server_};
  server_stack.listen(80, [](tcp::TcpConnection&) {});
  tcp::TcpStack client_stack{access_.client()};
  TimePoint established;
  tcp::TcpConnection& conn = client_stack.connect(kServerAddr, 80);
  conn.on_established = [&] { established = sim_.now(); };
  sim_.run_until(TimePoint::epoch() + 10_s);
  ASSERT_GT(established.ns(), 0);
  // Same one-RTT handshake, but now it crosses the full path to the server.
  EXPECT_GT((established - TimePoint::epoch()).to_millis(), 564.0);
  EXPECT_EQ(access_.pep().stats().flows_split, 0u);
}

TEST_F(GeoNoPepTest, SlowStartWithoutPepIsPainfullySlow) {
  tcp::TcpStack server_stack{*server_};
  server_stack.listen(80, [&](tcp::TcpConnection& c) {
    c.on_data = [&c](std::uint64_t) { c.send(5'000'000); };
  });
  tcp::TcpStack client_stack{access_.client()};
  std::uint64_t got = 0;
  tcp::TcpConnection& conn = client_stack.connect(kServerAddr, 80);
  conn.on_data = [&](std::uint64_t n) { got += n; };
  conn.on_established = [&conn] { conn.send(300); };
  // After 5 seconds (~7 RTTs), slow start from IW10 at 600ms RTT has moved
  // far less data than the PEP-assisted path would.
  sim_.run_until(TimePoint::epoch() + 5_s);
  EXPECT_LT(got, 4'000'000u);
  sim_.run_until(TimePoint::epoch() + 120_s);
  EXPECT_EQ(got, 5'000'000u);
}

}  // namespace
}  // namespace slp::geo
