// runner_test.cpp — pool lifecycle, exception safety, and the determinism
// guarantee that motivates the whole subsystem: the merged output of a
// multi-seed sweep is bit-identical whatever the worker count.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "measure/campaign.hpp"
#include "runner/pool.hpp"
#include "runner/sweep.hpp"

namespace slp::runner {
namespace {

TEST(Pool, RunsEverySubmittedTask) {
  Pool pool{4};
  EXPECT_EQ(pool.workers(), 4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.drain();
  EXPECT_EQ(ran.load(), 100);
  EXPECT_EQ(pool.tasks_completed(), 100u);
}

TEST(Pool, DrainOnEmptyPoolReturnsImmediately) {
  Pool pool{2};
  pool.drain();
  EXPECT_EQ(pool.tasks_completed(), 0u);
}

TEST(Pool, IsReusableAcrossDrains) {
  Pool pool{3};
  std::atomic<int> ran{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.drain();
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(Pool, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    Pool pool{2};
    for (int i = 0; i < 32; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No drain(): the destructor must wait for all 32.
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(Pool, DrainRethrowsFirstTaskException) {
  Pool pool{2};
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&ran, i] {
      if (i == 3) throw std::runtime_error{"cell 3 failed"};
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_THROW(pool.drain(), std::runtime_error);
  // The failure did not cancel the other cells...
  EXPECT_EQ(ran.load(), 9);
  EXPECT_EQ(pool.tasks_completed(), 10u);
  // ...and the pool stays usable, with the error slot cleared.
  pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_NO_THROW(pool.drain());
  EXPECT_EQ(ran.load(), 10);
}

TEST(Pool, NestedSubmitFromWorkerCompletes) {
  Pool pool{2};
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &ran] {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.drain();
  EXPECT_EQ(ran.load(), 16);
}

TEST(Pool, SingleWorkerStealsNothing) {
  Pool pool{1};
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.drain();
  EXPECT_EQ(ran.load(), 16);
  EXPECT_EQ(pool.tasks_stolen(), 0u);
}

TEST(CellSeed, CellZeroPreservesBaseSeed) {
  EXPECT_EQ(cell_seed(42, 0), 42u);
  EXPECT_EQ(cell_seed(0xDEADBEEF, 0), 0xDEADBEEFull);
}

TEST(CellSeed, CellsAreDistinct) {
  std::vector<std::uint64_t> seen;
  for (std::uint64_t cell = 0; cell < 64; ++cell) {
    seen.push_back(cell_seed(7, cell));
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    for (std::size_t j = i + 1; j < seen.size(); ++j) {
      EXPECT_NE(seen[i], seen[j]) << "cells " << i << " and " << j;
    }
  }
}

// ====================================================== jobs invariance

measure::PingCampaign::Result ping_sweep(int jobs) {
  measure::PingCampaign::Config config;
  config.seed = 20220131;
  config.duration = Duration::minutes(20);
  config.cadence = Duration::minutes(5);
  config.epochs = false;
  SweepConfig sweep;
  sweep.seeds = 4;
  sweep.jobs = jobs;
  return run_merged<measure::PingCampaign>(sweep, config);
}

TEST(Sweep, MergedPingCampaignIsJobsInvariant) {
  const auto serial = ping_sweep(1);
  ASSERT_FALSE(serial.anchors.empty());
  ASSERT_GT(serial.pings_sent, 0u);
  for (const int jobs : {2, 8}) {
    const auto parallel = ping_sweep(jobs);
    EXPECT_EQ(serial.pings_sent, parallel.pings_sent) << jobs << " jobs";
    EXPECT_EQ(serial.pings_lost, parallel.pings_lost) << jobs << " jobs";
    ASSERT_EQ(serial.anchors.size(), parallel.anchors.size());
    for (std::size_t a = 0; a < serial.anchors.size(); ++a) {
      const auto& sv = serial.anchors[a].rtt_ms.values();
      const auto& pv = parallel.anchors[a].rtt_ms.values();
      ASSERT_EQ(sv.size(), pv.size()) << "anchor " << a << ", " << jobs << " jobs";
      // Bit-identical, including sample *order* (merge is cell-id ordered).
      for (std::size_t k = 0; k < sv.size(); ++k) {
        ASSERT_EQ(sv[k], pv[k]) << "anchor " << a << " sample " << k;
      }
    }
    for (std::size_t h = 0; h < serial.eu_by_hour.size(); ++h) {
      EXPECT_EQ(serial.eu_by_hour[h], parallel.eu_by_hour[h]) << "hour " << h;
    }
    ASSERT_EQ(serial.eu_timeline.bins(), parallel.eu_timeline.bins());
    for (std::size_t b = 0; b < serial.eu_timeline.bins(); ++b) {
      EXPECT_EQ(serial.eu_timeline.bin(b).values(), parallel.eu_timeline.bin(b).values());
    }
  }
}

TEST(Sweep, SingleCellSweepMatchesPlainCampaign) {
  measure::PingCampaign::Config config;
  config.seed = 77;
  config.duration = Duration::minutes(15);
  config.cadence = Duration::minutes(5);
  config.epochs = false;
  const auto plain = measure::PingCampaign::run(config);
  SweepConfig sweep;  // seeds = 1
  sweep.jobs = 2;
  const auto swept = run_merged<measure::PingCampaign>(sweep, config);
  EXPECT_EQ(plain.pings_sent, swept.pings_sent);
  ASSERT_EQ(plain.anchors.size(), swept.anchors.size());
  for (std::size_t a = 0; a < plain.anchors.size(); ++a) {
    EXPECT_EQ(plain.anchors[a].rtt_ms.values(), swept.anchors[a].rtt_ms.values());
  }
}

}  // namespace
}  // namespace slp::runner
