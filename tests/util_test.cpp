#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/flags.hpp"
#include "util/inline_function.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/small_vector.hpp"
#include "util/units.hpp"

namespace slp {
namespace {

using namespace slp::literals;

// ---------------------------------------------------------------- Duration

TEST(Duration, FactoryConversionsAreExact) {
  EXPECT_EQ(Duration::seconds(1).ns(), 1'000'000'000);
  EXPECT_EQ(Duration::millis(3).ns(), 3'000'000);
  EXPECT_EQ(Duration::micros(7).ns(), 7'000);
  EXPECT_EQ(Duration::minutes(2).ns(), 120'000'000'000);
  EXPECT_EQ(Duration::hours(1), Duration::minutes(60));
  EXPECT_EQ(Duration::days(1), Duration::hours(24));
}

TEST(Duration, FromSecondsRoundsToNearestNanosecond) {
  EXPECT_EQ(Duration::from_seconds(1.5).ns(), 1'500'000'000);
  EXPECT_EQ(Duration::from_millis(0.0001).ns(), 100);
  EXPECT_EQ(Duration::from_micros(2.5).ns(), 2'500);
}

TEST(Duration, ArithmeticBehavesLikeIntegers) {
  const Duration a = 5_ms;
  const Duration b = 3_ms;
  EXPECT_EQ((a + b).ns(), 8'000'000);
  EXPECT_EQ((a - b).ns(), 2'000'000);
  EXPECT_EQ((a * 2.0).ns(), 10'000'000);
  EXPECT_DOUBLE_EQ(a / b, 5.0 / 3.0);
  EXPECT_EQ(-a + a, Duration::zero());
}

TEST(Duration, ComparisonsAreTotalOrder) {
  EXPECT_LT(1_ms, 2_ms);
  EXPECT_LE(2_ms, 2_ms);
  EXPECT_GT(1_s, 999_ms);
  EXPECT_TRUE(Duration::zero().is_zero());
  EXPECT_TRUE((Duration::zero() - 1_ns).is_negative());
  EXPECT_TRUE(Duration::infinite().is_infinite());
}

TEST(Duration, ToStringPicksReadableUnit) {
  EXPECT_EQ(to_string(2_s), "2s");
  EXPECT_EQ(to_string(5_ms), "5ms");
  EXPECT_EQ(to_string(42_us), "42us");
  EXPECT_EQ(to_string(7_ns), "7ns");
}

// ---------------------------------------------------------------- TimePoint

TEST(TimePoint, EpochPlusDurationRoundTrips) {
  const TimePoint t = TimePoint::epoch() + 5_s;
  EXPECT_EQ(t.since_epoch(), 5_s);
  EXPECT_EQ((t - 2_s).since_epoch(), 3_s);
  EXPECT_EQ(t - TimePoint::epoch(), 5_s);
}

TEST(TimePoint, OrderingFollowsClock) {
  const TimePoint a = TimePoint::epoch() + 1_s;
  const TimePoint b = TimePoint::epoch() + 2_s;
  EXPECT_LT(a, b);
  EXPECT_EQ(a + 1_s, b);
}

// ---------------------------------------------------------------- DataRate

TEST(DataRate, TransmissionTimeMatchesHandMath) {
  // 1500 bytes at 12 Mbit/s = 1 ms.
  EXPECT_EQ(DataRate::mbps(12).transmission_time(1500), 1_ms);
  // 125 bytes at 1 Mbit/s = 1 ms.
  EXPECT_EQ(DataRate::mbps(1).transmission_time(125), 1_ms);
}

TEST(DataRate, BytesInInvertsTransmissionTime) {
  const DataRate r = DataRate::mbps(100);
  EXPECT_NEAR(r.bytes_in(1_s), 12'500'000.0, 1.0);
}

TEST(DataRate, RateOfComputesObservedThroughput) {
  // 12.5 MB in one second = 100 Mbit/s.
  EXPECT_NEAR(rate_of(12'500'000, 1_s).to_mbps(), 100.0, 1e-9);
  EXPECT_TRUE(rate_of(1000, Duration::zero()).is_zero());
}

TEST(DataRate, LiteralsAndComparisons) {
  EXPECT_EQ(100_mbps, DataRate::mbps(100));
  EXPECT_LT(10_mbps, 1_gbps);
  EXPECT_EQ((2 * 50_mbps).to_mbps(), 100.0);
}

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsStableAndIndependent) {
  const Rng parent{7};
  Rng f1 = parent.fork("quic");
  Rng f2 = parent.fork("quic");
  Rng f3 = parent.fork("tcp");
  EXPECT_EQ(f1.next(), f2.next());
  EXPECT_NE(f1.next(), f3.next());
}

TEST(Rng, UniformStaysInRange) {
  Rng rng{3};
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng{4};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng{5};
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.2);
}

TEST(Rng, NormalMomentsConverge) {
  Rng rng{6};
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng{8};
  for (int i = 0; i < 10'000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng{9};
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, WorksWithStdDistributions) {
  Rng rng{10};
  std::uniform_int_distribution<int> dist(0, 9);
  for (int i = 0; i < 100; ++i) {
    const int v = dist(rng);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 9);
  }
}

// ---------------------------------------------------------------- Flags

TEST(Flags, ParsesKeyValueAndBareFlags) {
  const char* argv[] = {"prog", "--seed=42", "--verbose", "pos1", "--rate=1.5"};
  const Flags f = Flags::parse(5, argv);
  EXPECT_EQ(f.get_int("seed", 0), 42);
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0.0), 1.5);
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "pos1");
}

TEST(Flags, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  const Flags f = Flags::parse(1, argv);
  EXPECT_EQ(f.get("name", "dflt"), "dflt");
  EXPECT_EQ(f.get_int("n", 7), 7);
  EXPECT_FALSE(f.has("n"));
}

TEST(Flags, TracksUnusedKeys) {
  const char* argv[] = {"prog", "--used=1", "--typo=2"};
  const Flags f = Flags::parse(3, argv);
  (void)f.get_int("used", 0);
  const auto unused = f.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

// ------------------------------------------------------------ parse_duration

TEST(ParseDuration, AcceptsEveryUnitSuffix) {
  Duration d;
  ASSERT_TRUE(parse_duration("90s", d));
  EXPECT_EQ(d, Duration::seconds(90));
  ASSERT_TRUE(parse_duration("15m", d));
  EXPECT_EQ(d, Duration::minutes(15));
  ASSERT_TRUE(parse_duration("15min", d));
  EXPECT_EQ(d, Duration::minutes(15));
  ASSERT_TRUE(parse_duration("2h", d));
  EXPECT_EQ(d, Duration::hours(2));
  ASSERT_TRUE(parse_duration("3d", d));
  EXPECT_EQ(d, Duration::days(3));
  ASSERT_TRUE(parse_duration("250ms", d));
  EXPECT_EQ(d, Duration::millis(250));
  ASSERT_TRUE(parse_duration("7us", d));
  EXPECT_EQ(d, Duration::micros(7));
  ASSERT_TRUE(parse_duration("42ns", d));
  EXPECT_EQ(d, Duration::nanos(42));
}

TEST(ParseDuration, BareNumberMeansSecondsAndFractionsWork) {
  Duration d;
  ASSERT_TRUE(parse_duration("42", d));
  EXPECT_EQ(d, Duration::seconds(42));
  ASSERT_TRUE(parse_duration("1.5s", d));
  EXPECT_EQ(d, Duration::millis(1500));
  ASSERT_TRUE(parse_duration("0.25h", d));
  EXPECT_EQ(d, Duration::minutes(15));
  ASSERT_TRUE(parse_duration("  2m ", d));  // surrounding whitespace
  EXPECT_EQ(d, Duration::minutes(2));
}

TEST(ParseDuration, RejectsJunkWithoutTouchingOut) {
  Duration d = Duration::seconds(99);
  EXPECT_FALSE(parse_duration("", d));
  EXPECT_FALSE(parse_duration("fast", d));
  EXPECT_FALSE(parse_duration("10 parsecs", d));
  EXPECT_FALSE(parse_duration("5x", d));
  EXPECT_FALSE(parse_duration("1.5s tail", d));
  EXPECT_EQ(d, Duration::seconds(99));
}

TEST(Flags, GetDurationParsesSuffixesAndFallsBack) {
  const char* argv[] = {"prog", "--window=15m", "--ramp=90s", "--bad=soon", "--bare=3"};
  const Flags f = Flags::parse(5, argv);
  EXPECT_EQ(f.get_duration("window", Duration::zero()), Duration::minutes(15));
  EXPECT_EQ(f.get_duration("ramp", Duration::zero()), Duration::seconds(90));
  EXPECT_EQ(f.get_duration("bare", Duration::zero()), Duration::seconds(3));
  // Invalid values warn and fall back to the default instead of misparsing.
  EXPECT_EQ(f.get_duration("bad", Duration::seconds(5)), Duration::seconds(5));
  EXPECT_EQ(f.get_duration("absent", Duration::hours(1)), Duration::hours(1));
  // get_duration marks its keys used, including the malformed one.
  EXPECT_TRUE(f.unused().empty());
}

// ---------------------------------------------------------- InlineFunction

/// Counts live copies via a shared counter — catches double-destroy and
/// missed-destroy bugs in the small-buffer move machinery.
struct DtorCounter {
  int* live;
  explicit DtorCounter(int* l) : live{l} { ++*live; }
  DtorCounter(const DtorCounter& o) : live{o.live} { ++*live; }
  DtorCounter(DtorCounter&& o) noexcept : live{o.live} { ++*live; }
  ~DtorCounter() { --*live; }
  void operator()() const {}
};

TEST(InlineFunction, SmallCallableStaysInline) {
  int hits = 0;
  util::InlineFunction f{[&hits] { ++hits; }};
  EXPECT_TRUE(f.is_inline());
  EXPECT_TRUE(static_cast<bool>(f));
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, MoveTransfersOwnershipExactlyOnce) {
  int live = 0;
  {
    util::InlineFunction a{DtorCounter{&live}};
    EXPECT_EQ(live, 1);
    util::InlineFunction b{std::move(a)};
    EXPECT_EQ(live, 1);  // moved, not duplicated
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    util::InlineFunction c;
    c = std::move(b);
    EXPECT_EQ(live, 1);
    EXPECT_FALSE(static_cast<bool>(b));
    c();  // still invocable after two moves
  }
  EXPECT_EQ(live, 0);  // destroyed exactly once
}

TEST(InlineFunction, MoveAssignDestroysPreviousTarget) {
  int live_a = 0;
  int live_b = 0;
  util::InlineFunction f{DtorCounter{&live_a}};
  f = util::InlineFunction{DtorCounter{&live_b}};
  EXPECT_EQ(live_a, 0);  // old callable destroyed by the assignment
  EXPECT_EQ(live_b, 1);
  f.reset();
  EXPECT_EQ(live_b, 0);
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InlineFunction, OversizedCaptureSpillsToHeapAndStillDestroys) {
  int live = 0;
  struct Big {
    DtorCounter c;
    std::byte pad[util::InlineFunction::kInlineBytes]{};  // force > kInlineBytes
    explicit Big(int* l) : c{l} {}
    void operator()() const {}
  };
  {
    util::InlineFunction f{Big{&live}};
    EXPECT_FALSE(f.is_inline());
    EXPECT_EQ(live, 1);
    util::InlineFunction g{std::move(f)};  // heap move = pointer steal
    EXPECT_EQ(live, 1);
    g();
  }
  EXPECT_EQ(live, 0);
}

// -------------------------------------------------------------- SmallVector

TEST(SmallVector, StaysInlineUpToNThenSpills) {
  util::SmallVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.size(), 4u);
  v.push_back(4);
  EXPECT_FALSE(v.is_inline());
  EXPECT_EQ(v.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVector, CopyAndCompare) {
  util::SmallVector<std::pair<std::uint64_t, std::uint64_t>, 4> a;
  a.emplace_back(1, 2);
  a.emplace_back(3, 4);
  auto b = a;  // packet-header copy path
  EXPECT_EQ(a, b);
  b.emplace_back(5, 6);
  EXPECT_FALSE(a == b);
  a = b;
  EXPECT_EQ(a, b);
}

TEST(SmallVector, MoveStealsHeapAndMovesInline) {
  util::SmallVector<std::string, 2> inl;
  inl.push_back("x");
  util::SmallVector<std::string, 2> m1{std::move(inl)};
  ASSERT_EQ(m1.size(), 1u);
  EXPECT_EQ(m1[0], "x");

  util::SmallVector<std::string, 2> heap;
  for (int i = 0; i < 5; ++i) heap.push_back(std::to_string(i));
  EXPECT_FALSE(heap.is_inline());
  util::SmallVector<std::string, 2> m2{std::move(heap)};
  ASSERT_EQ(m2.size(), 5u);
  EXPECT_EQ(m2[4], "4");
  EXPECT_TRUE(heap.empty());  // NOLINT(bugprone-use-after-move): spec'd empty
}

TEST(SmallVector, ClearKeepsCapacityAndReuses) {
  util::SmallVector<int, 4> v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back(42);
  EXPECT_EQ(v.back(), 42);
}

TEST(SmallVector, PopBackDestroysAndShrinks) {
  // pop_back powers the QUIC chunk requeue (drain a gathered chain
  // back-to-front); it must destroy the element and work inline and spilled.
  util::SmallVector<std::string, 2> v;
  for (int i = 0; i < 5; ++i) v.push_back(std::string(64, static_cast<char>('a' + i)));
  EXPECT_FALSE(v.is_inline());
  while (!v.empty()) {
    const std::size_t before = v.size();
    EXPECT_EQ(v.back(), std::string(64, static_cast<char>('a' + before - 1)));
    v.pop_back();
    EXPECT_EQ(v.size(), before - 1);
  }
  v.push_back("again");  // reusable after draining
  EXPECT_EQ(v.back(), "again");
}

TEST(Fnv1a, StableKnownValue) {
  // FNV-1a 64-bit of empty string is the offset basis.
  EXPECT_EQ(fnv1a64(""), 0xCBF29CE484222325ull);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
}

// ------------------------------------------------------------------ Logger

TEST(Logger, ParsesLevelNames) {
  EXPECT_EQ(parse_log_level("trace", LogLevel::kWarn), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("debug", LogLevel::kWarn), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info", LogLevel::kWarn), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn", LogLevel::kError), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error", LogLevel::kWarn), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off", LogLevel::kWarn), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus", LogLevel::kInfo), LogLevel::kInfo);
}

TEST(Logger, ConcurrentWritesDoNotInterleave) {
  // Capture std::clog; each record must come out as one intact line even
  // with several threads logging at once (the sweep-pool scenario).
  std::ostringstream captured;
  std::streambuf* old = std::clog.rdbuf(captured.rdbuf());
  const LogLevel old_level = Logger::instance().level();
  Logger::instance().set_level(LogLevel::kInfo);

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 50; ++i) {
        SLP_LOG(kInfo, "worker", "thread=" << t << " line=" << i << " padpadpadpad");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  Logger::instance().set_level(old_level);
  std::clog.rdbuf(old);

  std::istringstream lines{captured.str()};
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_NE(line.find("[INFO] worker: thread="), std::string::npos) << line;
    EXPECT_NE(line.find("padpadpadpad"), std::string::npos) << line;
  }
  EXPECT_EQ(count, 200);
}

TEST(Logger, ThreadTimeSourcePrefixesSimTime) {
  std::ostringstream captured;
  std::streambuf* old = std::clog.rdbuf(captured.rdbuf());
  const LogLevel old_level = Logger::instance().level();
  Logger::instance().set_level(LogLevel::kInfo);

  const int owner = 0;
  Logger::set_time_source(&owner, [](const void*) -> std::int64_t {
    return 1'500'000'000;  // 1.5 s of sim time
  });
  SLP_LOG(kInfo, "sim", "with clock");
  Logger::clear_time_source(&owner);
  SLP_LOG(kInfo, "sim", "without clock");

  Logger::instance().set_level(old_level);
  std::clog.rdbuf(old);
  const std::string out = captured.str();
  EXPECT_NE(out.find("[t=1.500000000s] sim: with clock"), std::string::npos);
  EXPECT_EQ(out.find("[t=1.500000000s] sim: without clock"), std::string::npos);
}

}  // namespace
}  // namespace slp
