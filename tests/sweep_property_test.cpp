// sweep_property_test.cpp — algebraic properties of runner::merge that the
// parallel sweep relies on: any partition of one sample multiset, merged in
// any shard order, yields the same distribution (quantiles, ECDF, moments);
// and distinct sweep cells really are distinct experiments.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "measure/campaign.hpp"
#include "runner/merge.hpp"
#include "runner/pool.hpp"
#include "runner/sweep.hpp"
#include "stats/ecdf.hpp"
#include "util/rng.hpp"

namespace slp::runner {
namespace {

// Splits `values` into `shards` non-empty-ish chunks at random boundaries.
std::vector<stats::Samples> random_partition(Rng& rng, const std::vector<double>& values,
                                             std::size_t shards) {
  std::vector<stats::Samples> out(shards);
  for (const double v : values) {
    out[rng.index(shards)].add(v);
  }
  return out;
}

std::vector<double> quantile_grid(const stats::Samples& s) {
  std::vector<double> out;
  for (const double q : {0.0, 0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    out.push_back(s.quantile(q));
  }
  return out;
}

TEST(MergeProperty, AnyPartitionYieldsIdenticalQuantiles) {
  Rng rng{2022};
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) values.push_back(rng.lognormal(3.9, 0.25));
  stats::Samples whole{values};
  const auto expected = quantile_grid(whole);

  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t shards = 1 + rng.index(8);
    const auto partition = random_partition(rng, values, shards);
    const stats::Samples merged = merge_samples(partition);
    ASSERT_EQ(merged.size(), values.size());
    EXPECT_EQ(quantile_grid(merged), expected) << "trial " << trial;
    // Means come from a streaming summary fed in shard order, so allow for
    // floating-point non-associativity of the summation.
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9 * std::abs(whole.mean()));
  }
}

TEST(MergeProperty, ShardOrderIsIrrelevant) {
  Rng rng{7};
  std::vector<double> values;
  for (int i = 0; i < 300; ++i) values.push_back(rng.exponential(40.0));
  auto partition = random_partition(rng, values, 5);

  const stats::Samples forward = merge_samples(partition);
  std::reverse(partition.begin(), partition.end());
  const stats::Samples reversed = merge_samples(partition);
  std::shuffle(partition.begin(), partition.end(), rng);
  const stats::Samples shuffled = merge_samples(partition);

  EXPECT_EQ(quantile_grid(forward), quantile_grid(reversed));
  EXPECT_EQ(quantile_grid(forward), quantile_grid(shuffled));
}

TEST(MergeProperty, PairwiseMergeIsAssociative) {
  Rng rng{99};
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(rng.normal(50.0, 8.0));
  const auto parts = random_partition(rng, values, 3);

  // (a + b) + c
  stats::Samples left = parts[0];
  merge(left, parts[1]);
  merge(left, parts[2]);
  // a + (b + c)
  stats::Samples bc = parts[1];
  merge(bc, parts[2]);
  stats::Samples right = parts[0];
  merge(right, bc);

  ASSERT_EQ(left.size(), right.size());
  // Left-fold in shard order is exactly concatenation, so even the raw
  // sample order agrees — a stronger property than quantile equality.
  EXPECT_EQ(left.values(), right.values());
}

TEST(MergeProperty, EcdfOfPartitionsMatchesWholeSet) {
  Rng rng{3};
  std::vector<double> values;
  for (int i = 0; i < 400; ++i) values.push_back(rng.pareto(10.0, 1.8));
  const stats::Ecdf whole{std::span<const double>{values}};
  const auto partition = random_partition(rng, values, 6);
  const stats::Ecdf merged = merged_ecdf(partition);
  ASSERT_EQ(merged.size(), whole.size());
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(merged.inverse(q), whole.inverse(q));
  }
  for (const double x : {10.0, 15.0, 40.0, 200.0}) {
    EXPECT_DOUBLE_EQ(merged.eval(x), whole.eval(x));
  }
}

TEST(MergeProperty, TimeBinnerMergePoolsPerBinSamples) {
  Rng rng{11};
  stats::TimeBinner whole{Duration::hours(6)};
  stats::TimeBinner left{Duration::hours(6)};
  stats::TimeBinner right{Duration::hours(6)};
  for (int i = 0; i < 250; ++i) {
    const TimePoint at = TimePoint::epoch() + Duration::minutes(rng.uniform_int(0, 14 * 24 * 60));
    const double v = rng.uniform(40.0, 60.0);
    whole.add(at, v);
    (rng.chance(0.5) ? left : right).add(at, v);
  }
  merge(left, right);
  ASSERT_EQ(left.bins(), whole.bins());
  for (std::size_t b = 0; b < whole.bins(); ++b) {
    ASSERT_EQ(left.bin(b).size(), whole.bin(b).size()) << "bin " << b;
    if (left.bin(b).empty()) continue;
    EXPECT_DOUBLE_EQ(left.bin(b).median(), whole.bin(b).median()) << "bin " << b;
  }
}

// ================================================= distinct seeds distinct

TEST(SweepProperty, DistinctSeedCellsProduceDistinctCampaigns) {
  measure::SpeedtestCampaign::Config config;
  config.seed = 5150;
  config.tests = 2;
  config.test_duration = Duration::seconds(5);
  Pool pool{2};
  const auto cells = run_cells<measure::SpeedtestCampaign>(pool, 3, config);
  ASSERT_EQ(cells.size(), 3u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ASSERT_FALSE(cells[i].mbps.empty()) << "cell " << i;
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    for (std::size_t j = i + 1; j < cells.size(); ++j) {
      EXPECT_NE(cells[i].mbps.values(), cells[j].mbps.values())
          << "cells " << i << " and " << j << " are identical";
    }
  }
}

TEST(SweepProperty, MergedSweepIsReproducibleAcrossRuns) {
  measure::SpeedtestCampaign::Config config;
  config.seed = 31337;
  config.tests = 1;
  config.test_duration = Duration::seconds(5);
  SweepConfig sweep;
  sweep.seeds = 3;
  sweep.jobs = 3;
  const auto a = run_merged<measure::SpeedtestCampaign>(sweep, config);
  const auto b = run_merged<measure::SpeedtestCampaign>(sweep, config);
  EXPECT_EQ(a.mbps.values(), b.mbps.values());
}

}  // namespace
}  // namespace slp::runner
