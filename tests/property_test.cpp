// property_test.cpp — parameterized sweeps asserting invariants that must
// hold across the whole parameter space, not just at calibration points.
#include <gtest/gtest.h>

#include "leo/isl.hpp"
#include "leo/places.hpp"
#include "phy/gilbert_elliott.hpp"
#include "phy/outage.hpp"
#include "quic/quic.hpp"
#include "sim/network.hpp"
#include "tcp/tcp.hpp"

namespace slp {
namespace {

using namespace slp::literals;
using sim::make_addr;

// ===================================================== TCP transfer sweep

struct TcpCase {
  double rate_mbps;
  int delay_ms;
  double loss;
  cc::CcAlgorithm algorithm;
};

class TcpTransferProperty : public ::testing::TestWithParam<TcpCase> {};

TEST_P(TcpTransferProperty, DeliversExactlyAndTerminates) {
  const TcpCase param = GetParam();
  sim::Simulator simulator{1234};
  sim::Network net{simulator};
  sim::Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
  sim::Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
  sim::Link& link = net.connect(
      a.uplink(), b.uplink(),
      sim::Network::symmetric(DataRate::mbps(param.rate_mbps),
                              Duration::millis(param.delay_ms), 1024 * 1024));
  std::unique_ptr<phy::BernoulliLoss> loss;
  if (param.loss > 0) {
    loss = std::make_unique<phy::BernoulliLoss>(param.loss, Rng{99});
    link.set_loss(0, loss.get());
  }

  tcp::TcpStack sa{a};
  tcp::TcpStack sb{b};
  std::uint64_t delivered = 0;
  sb.listen(80, [&](tcp::TcpConnection& c) {
    c.on_data = [&](std::uint64_t n) { delivered += n; };
  });
  tcp::TcpConfig config;
  config.algorithm = param.algorithm;
  tcp::TcpConnection& conn = sa.connect(b.addr(), 80, config);
  const std::uint64_t total = 3'000'000;
  conn.on_established = [&conn] { conn.send(total); };
  simulator.run_until(TimePoint::epoch() + Duration::minutes(10));

  // Invariants: exact delivery, drained pipe, monotone byte accounting.
  EXPECT_EQ(delivered, total);
  EXPECT_EQ(conn.stats().bytes_acked, total);
  EXPECT_EQ(conn.bytes_in_flight(), 0u);
  EXPECT_GE(conn.stats().segments_sent,
            total / 1448 + 1);  // at least one wire segment per MSS
}

INSTANTIATE_TEST_SUITE_P(
    RateDelayLossGrid, TcpTransferProperty,
    ::testing::Values(
        TcpCase{5, 5, 0.0, cc::CcAlgorithm::kCubic},
        TcpCase{5, 5, 0.0, cc::CcAlgorithm::kNewReno},
        TcpCase{20, 25, 0.0, cc::CcAlgorithm::kCubic},
        TcpCase{20, 25, 0.01, cc::CcAlgorithm::kCubic},
        TcpCase{20, 25, 0.01, cc::CcAlgorithm::kNewReno},
        TcpCase{100, 10, 0.0, cc::CcAlgorithm::kCubic},
        TcpCase{100, 10, 0.005, cc::CcAlgorithm::kCubic},
        TcpCase{100, 150, 0.0, cc::CcAlgorithm::kCubic},
        TcpCase{500, 2, 0.0, cc::CcAlgorithm::kCubic},
        TcpCase{2, 300, 0.0, cc::CcAlgorithm::kCubic},
        TcpCase{2, 300, 0.02, cc::CcAlgorithm::kNewReno}),
    [](const auto& info) {
      const TcpCase& c = info.param;
      return std::to_string(static_cast<int>(c.rate_mbps)) + "mbps_" +
             std::to_string(c.delay_ms) + "ms_loss" +
             std::to_string(static_cast<int>(c.loss * 1000)) + "_" +
             (c.algorithm == cc::CcAlgorithm::kCubic ? "cubic" : "reno");
    });

// ===================================================== QUIC transfer sweep

struct QuicCase {
  std::uint64_t bytes;
  double rate_mbps;
  int delay_ms;
  double loss;
  bool pacing;
};

class QuicTransferProperty : public ::testing::TestWithParam<QuicCase> {};

TEST_P(QuicTransferProperty, StreamDeliversExactly) {
  const QuicCase param = GetParam();
  sim::Simulator simulator{77};
  sim::Network net{simulator};
  sim::Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
  sim::Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
  sim::Link& link = net.connect(
      a.uplink(), b.uplink(),
      sim::Network::symmetric(DataRate::mbps(param.rate_mbps),
                              Duration::millis(param.delay_ms), 768 * 1024));
  std::unique_ptr<phy::BernoulliLoss> loss;
  if (param.loss > 0) {
    loss = std::make_unique<phy::BernoulliLoss>(param.loss, Rng{5});
    link.set_loss(0, loss.get());
  }
  quic::QuicStack ca{a};
  quic::QuicStack cb{b};
  quic::QuicConfig config;
  config.pacing = param.pacing;
  std::uint64_t got = 0;
  cb.listen(443, [&](quic::QuicConnection& c) {
    c.on_stream_data = [&](std::uint64_t n) { got += n; };
  }, config);
  quic::QuicConnection& conn = ca.connect(b.addr(), 443, config);
  conn.on_established = [&conn, &param] { conn.send_stream(param.bytes); };
  simulator.run_until(TimePoint::epoch() + Duration::minutes(10));
  EXPECT_EQ(got, param.bytes);
  EXPECT_EQ(conn.bytes_in_flight(), 0u);
  // Packet numbers never repeat: receiver count <= sender pn space size.
  EXPECT_LE(conn.stats().packets_sent, conn.stats().largest_pn_sent + 1);
}

INSTANTIATE_TEST_SUITE_P(
    SizeRateGrid, QuicTransferProperty,
    ::testing::Values(QuicCase{1, 10, 10, 0.0, false},
                      QuicCase{1350, 10, 10, 0.0, false},
                      QuicCase{100'000, 10, 10, 0.0, false},
                      QuicCase{100'000, 10, 10, 0.03, false},
                      QuicCase{2'000'000, 50, 30, 0.0, false},
                      QuicCase{2'000'000, 50, 30, 0.01, false},
                      QuicCase{2'000'000, 50, 30, 0.01, true},
                      QuicCase{5'000'000, 200, 5, 0.0, false},
                      QuicCase{500'000, 3, 200, 0.0, false},
                      QuicCase{500'000, 3, 200, 0.02, true}),
    [](const auto& info) {
      const QuicCase& c = info.param;
      return std::to_string(c.bytes) + "B_" + std::to_string(static_cast<int>(c.rate_mbps)) +
             "mbps_" + std::to_string(c.delay_ms) + "ms_loss" +
             std::to_string(static_cast<int>(c.loss * 1000)) +
             (c.pacing ? "_paced" : "_unpaced");
    });

// ===================================================== link conservation

class LinkConservationProperty : public ::testing::TestWithParam<int> {};

TEST_P(LinkConservationProperty, PacketsConservedAndFifo) {
  const int rate_mbps = GetParam();
  sim::Simulator simulator{3};
  sim::Network net{simulator};
  sim::Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
  sim::Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
  sim::Link& link = net.connect(a.uplink(), b.uplink(),
                                sim::Network::symmetric(DataRate::mbps(rate_mbps), 5_ms,
                                                        64 * 1024));
  std::vector<std::uint64_t> arrivals;
  b.bind(sim::Protocol::kUdp, 7, [&](const sim::Packet& p) { arrivals.push_back(p.flow_id); });
  const int n = 500;
  Rng rng{4};
  Duration at = Duration::zero();
  for (int i = 0; i < n; ++i) {
    sim::Packet p;
    p.dst = b.addr();
    p.dst_port = 7;
    p.proto = sim::Protocol::kUdp;
    p.size_bytes = static_cast<std::uint32_t>(rng.uniform_int(64, 1500));
    p.flow_id = static_cast<std::uint64_t>(i);
    // Random inter-send gaps, monotone send order (so flow ids are FIFO).
    at += Duration::micros(rng.uniform_int(0, 400));
    simulator.schedule_in(at, [&a, p]() mutable { a.send(std::move(p)); });
  }
  simulator.run();
  const auto& stats = link.stats_a_to_b();
  // Conservation: every enqueued packet was delivered or dropped.
  EXPECT_EQ(stats.enqueued_packets,
            stats.delivered_packets + stats.dropped_overflow + stats.dropped_medium +
                stats.dropped_aqm);
  EXPECT_EQ(arrivals.size(), stats.delivered_packets);
  // FIFO: flow ids arrive in send order (drops allowed, reorders not).
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_LT(arrivals[i - 1], arrivals[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, LinkConservationProperty,
                         ::testing::Values(1, 10, 100, 1000));

// ============================================= link delivery-mode equivalence
//
// The rewritten link keeps the original two-events-per-packet scheduling
// behind Config::unbatched as a reference implementation. Randomized
// bidirectional packet mixes must observe exactly the same deliveries (time,
// uid, size, per direction), the same drop decisions, and the same FIFO
// order whether the link runs the reference, the batched event path, or the
// analytic fast path.

struct LinkModeCase {
  int seed;
  double rate_mbps;
  int delay_ms;
  bool lossy;  ///< lossy dirs are fast-ineligible: exercises the batched path
};

struct LinkModeObservation {
  std::vector<std::tuple<TimePoint, std::uint64_t, std::uint32_t>> ab, ba;
  std::uint64_t drops_ab = 0, drops_ba = 0, overflow_ab = 0;
  std::uint64_t tx_bytes_ab = 0;

  friend bool operator==(const LinkModeObservation&, const LinkModeObservation&) = default;
};

LinkModeObservation run_link_mix(const LinkModeCase& param, bool unbatched,
                                 bool fast_forward) {
  sim::Simulator simulator{static_cast<std::uint64_t>(param.seed)};
  simulator.set_fast_forward(fast_forward);
  sim::Network net{simulator};
  sim::Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
  sim::Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
  sim::Link::Config config =
      sim::Network::symmetric(DataRate::mbps(param.rate_mbps),
                              Duration::millis(param.delay_ms), 48 * 1024);
  config.unbatched = unbatched;
  sim::Link& link = net.connect(a.uplink(), b.uplink(), std::move(config));
  std::unique_ptr<phy::GilbertElliott> loss_ab, loss_ba;
  if (param.lossy) {
    phy::GilbertElliott::Config ge;
    ge.mean_good = Duration::millis(300);
    ge.mean_bad = Duration::millis(30);
    ge.loss_bad = 0.6;
    loss_ab = std::make_unique<phy::GilbertElliott>(ge, Rng{static_cast<std::uint64_t>(param.seed) + 1});
    loss_ba = std::make_unique<phy::GilbertElliott>(ge, Rng{static_cast<std::uint64_t>(param.seed) + 2});
    link.set_loss(0, loss_ab.get());
    link.set_loss(1, loss_ba.get());
  }

  LinkModeObservation out;
  link.set_delivery_tap(0, [&](const sim::Packet& p) {
    out.ab.emplace_back(simulator.now(), p.uid, p.size_bytes);
  });
  link.set_delivery_tap(1, [&](const sim::Packet& p) {
    out.ba.emplace_back(simulator.now(), p.uid, p.size_bytes);
  });
  b.bind(sim::Protocol::kUdp, 7, [](const sim::Packet&) {});
  a.bind(sim::Protocol::kUdp, 7, [](const sim::Packet&) {});

  // Random bidirectional mix: bursty enough to build queues and overflow.
  Rng rng{static_cast<std::uint64_t>(param.seed) * 7919};
  Duration at_ab = Duration::zero();
  Duration at_ba = Duration::zero();
  for (int i = 0; i < 600; ++i) {
    for (int dir = 0; dir < 2; ++dir) {
      sim::Host& from = dir == 0 ? a : b;
      sim::Host& to = dir == 0 ? b : a;
      Duration& at = dir == 0 ? at_ab : at_ba;
      sim::Packet p;
      p.dst = to.addr();
      p.dst_port = 7;
      p.proto = sim::Protocol::kUdp;
      p.size_bytes = static_cast<std::uint32_t>(rng.uniform_int(64, 1500));
      at += Duration::micros(rng.uniform_int(0, 300));
      simulator.schedule_in(at, [&from, p]() mutable { from.send(std::move(p)); });
    }
  }
  simulator.run();

  out.drops_ab = link.stats_a_to_b().dropped_medium;
  out.drops_ba = link.stats_b_to_a().dropped_medium;
  out.overflow_ab = link.stats_a_to_b().dropped_overflow;
  out.tx_bytes_ab = link.stats_a_to_b().tx_bytes;
  return out;
}

class LinkModeEquivalence : public ::testing::TestWithParam<LinkModeCase> {};

TEST_P(LinkModeEquivalence, BatchedAndFastMatchTheReference) {
  const LinkModeCase param = GetParam();
  const LinkModeObservation reference = run_link_mix(param, /*unbatched=*/true,
                                                     /*fast_forward=*/false);
  const LinkModeObservation batched = run_link_mix(param, /*unbatched=*/false,
                                                   /*fast_forward=*/false);
  EXPECT_EQ(batched, reference);
  if (!param.lossy) {
    // Lossless static dirs take the analytic fast path when allowed.
    const LinkModeObservation fast = run_link_mix(param, /*unbatched=*/false,
                                                  /*fast_forward=*/true);
    EXPECT_EQ(fast, reference);
  }
  // FIFO within each direction (uids stamped in send order per host).
  for (std::size_t i = 1; i < reference.ab.size(); ++i) {
    EXPECT_LT(std::get<1>(reference.ab[i - 1]), std::get<1>(reference.ab[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, LinkModeEquivalence,
    ::testing::Values(LinkModeCase{1, 10, 5, false}, LinkModeCase{2, 10, 5, true},
                      LinkModeCase{3, 50, 1, false}, LinkModeCase{4, 50, 40, true},
                      LinkModeCase{5, 2, 20, false}, LinkModeCase{6, 2, 20, true},
                      LinkModeCase{7, 300, 3, false}, LinkModeCase{8, 300, 3, true}),
    [](const auto& info) {
      const LinkModeCase& c = info.param;
      return "seed" + std::to_string(c.seed) + "_" +
             std::to_string(static_cast<int>(c.rate_mbps)) + "mbps_" +
             std::to_string(c.delay_ms) + "ms" + (c.lossy ? "_lossy" : "_clean");
    });

// ===================================================== GE stationarity

class GilbertElliottProperty
    : public ::testing::TestWithParam<std::pair<int, int>> {};  // (good_s, bad_ms)

TEST_P(GilbertElliottProperty, StationaryLossMatchesTheory) {
  const auto [good_s, bad_ms] = GetParam();
  phy::GilbertElliott::Config config;
  config.mean_good = Duration::seconds(good_s);
  config.mean_bad = Duration::millis(bad_ms);
  config.loss_bad = 0.7;
  phy::GilbertElliott ge{config, Rng{8}};
  sim::Packet p;
  p.size_bytes = 1000;
  std::uint64_t drops = 0;
  const int n = 3'000'000;
  for (int i = 0; i < n; ++i) {
    if (ge.should_drop(TimePoint::epoch() + Duration::micros(500) * static_cast<double>(i),
                       p)) {
      ++drops;
    }
  }
  const double bad_fraction =
      config.mean_bad.to_seconds() / (config.mean_bad + config.mean_good).to_seconds();
  const double expected = bad_fraction * config.loss_bad;
  EXPECT_NEAR(static_cast<double>(drops) / n, expected, expected * 0.35 + 2e-5);
}

INSTANTIATE_TEST_SUITE_P(Regimes, GilbertElliottProperty,
                         ::testing::Values(std::pair{1, 100}, std::pair{5, 50},
                                           std::pair{24, 100}, std::pair{60, 500}));

// ===================================================== regression tests

TEST(Regression, WindowUpdateAcksAreNotDupacks) {
  // A receiver that repeatedly announces more window (manual-read consume)
  // must not trigger spurious fast retransmits at the sender.
  sim::Simulator simulator{21};
  sim::Network net{simulator};
  sim::Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
  sim::Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
  net.connect(a.uplink(), b.uplink(),
              sim::Network::symmetric(DataRate::mbps(100), 5_ms, 2 * 1024 * 1024));
  tcp::TcpStack sa{a};
  tcp::TcpStack sb{b};
  tcp::TcpConnection* server_conn = nullptr;
  std::uint64_t unconsumed = 0;
  sb.listen(80, [&](tcp::TcpConnection& c) {
    server_conn = &c;
    c.set_manual_read(true);
    c.on_data = [&](std::uint64_t n) { unconsumed += n; };
  });
  tcp::TcpConnection& conn = sa.connect(b.addr(), 80);
  conn.on_established = [&conn] { conn.send(5'000'000); };
  // Slow reader: consume in 64kB sips every 20ms.
  std::function<void()> sip = [&] {
    if (server_conn != nullptr && unconsumed > 0) {
      const std::uint64_t n = std::min<std::uint64_t>(unconsumed, 65'536);
      unconsumed -= n;
      server_conn->consume(n);
    }
    simulator.schedule_in(20_ms, sip);
  };
  simulator.schedule_in(20_ms, sip);
  simulator.run_until(TimePoint::epoch() + 40_s);
  EXPECT_EQ(conn.stats().bytes_acked, 5'000'000u);
  // Clean path: zero loss means zero retransmissions, despite thousands of
  // pure window updates.
  EXPECT_EQ(conn.stats().retransmissions, 0u);
  EXPECT_EQ(conn.stats().fast_recoveries, 0u);
}

TEST(Regression, ManualReadBackpressuresSender) {
  sim::Simulator simulator{22};
  sim::Network net{simulator};
  sim::Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
  sim::Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
  net.connect(a.uplink(), b.uplink(),
              sim::Network::symmetric(DataRate::gbps(1), 2_ms, 8 * 1024 * 1024));
  tcp::TcpStack sa{a};
  tcp::TcpStack sb{b};
  std::uint64_t delivered = 0;
  tcp::TcpConfig server_config;
  server_config.initial_rcv_buffer = 256 * 1024;
  server_config.max_rcv_buffer = 256 * 1024;
  sb.listen(80, [&](tcp::TcpConnection& c) {
    c.set_manual_read(true);  // and never consume
    c.on_data = [&](std::uint64_t n) { delivered += n; };
  }, server_config);
  tcp::TcpConnection& conn = sa.connect(b.addr(), 80);
  conn.on_established = [&conn] { conn.send(50'000'000); };
  simulator.run_until(TimePoint::epoch() + 5_s);
  // A never-reading receiver caps delivery at roughly its buffer size.
  EXPECT_LE(delivered, 300'000u);
  EXPECT_GT(delivered, 100'000u);
}

TEST(Regression, UtilizationLossIdleLinkNeverDrops) {
  phy::UtilizationLoss loss{{.threshold = 0.3, .p_drop = 1.0, .burst_continue = 1.0,
                             .max_burst = 10},
                            Rng{9}};
  sim::Packet p;
  p.size_bytes = 1200;
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_FALSE(loss.should_drop(TimePoint::epoch(), p, 0.29));
  }
  // Above threshold with p=1: drops immediately and bursts.
  EXPECT_TRUE(loss.should_drop(TimePoint::epoch(), p, 0.5));
}

TEST(Regression, UtilizationLossBurstsAreBounded) {
  // With a small arming probability, bursts are capped near max_burst
  // (chained re-arming needs another p_drop success, so longer runs decay
  // geometrically).
  phy::UtilizationLoss loss{{.threshold = 0.1, .p_drop = 0.01, .burst_continue = 1.0,
                             .max_burst = 4},
                            Rng{10}};
  sim::Packet p;
  p.size_bytes = 1200;
  int consecutive = 0;
  int max_burst = 0;
  int total_drops = 0;
  for (int i = 0; i < 200'000; ++i) {
    if (loss.should_drop(TimePoint::epoch(), p, 0.9)) {
      ++total_drops;
      max_burst = std::max(max_burst, ++consecutive);
    } else {
      consecutive = 0;
    }
  }
  EXPECT_GT(total_drops, 0);
  EXPECT_GE(max_burst, 4);
  EXPECT_LE(max_burst, 12);  // one-in-10^4 chained re-arms, not runaways
}

TEST(Regression, TcpGivesUpAfterMaxRtoRetries) {
  sim::Simulator simulator{23};
  sim::Network net{simulator};
  sim::Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
  sim::Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
  sim::Link& link = net.connect(a.uplink(), b.uplink(),
                                sim::Network::symmetric(DataRate::mbps(10), 5_ms));
  tcp::TcpStack sa{a};
  tcp::TcpStack sb{b};
  sb.listen(80, [](tcp::TcpConnection& c) { c.on_data = [](std::uint64_t) {}; });
  bool error = false;
  tcp::TcpConnection& conn = sa.connect(b.addr(), 80);
  conn.on_error = [&] { error = true; };
  conn.on_established = [&conn, &link] {
    conn.send(100'000);
    // The path dies mid-transfer and never comes back.
    class DropAll final : public sim::LossModel {
     public:
      bool should_drop(TimePoint, const sim::Packet&) override { return true; }
    };
    static DropAll drop;
    link.set_loss(0, &drop);
  };
  simulator.run_until(TimePoint::epoch() + Duration::minutes(60));
  EXPECT_TRUE(error);
  EXPECT_EQ(conn.state(), tcp::TcpState::kDone);
  // The simulator must fully drain: no immortal retransmission timers.
  simulator.run();
  EXPECT_EQ(simulator.pending_events(), 0u);
}

TEST(Regression, QuicEagerReductionIsMoreCautiousThanRfcMode) {
  // Same path, same loss: the quiche-era mode (default) must end up with a
  // smaller or equal congestion window than the RFC once-per-round mode.
  auto run = [](bool once_per_round) {
    sim::Simulator simulator{24};
    sim::Network net{simulator};
    sim::Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
    sim::Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
    sim::Link& link = net.connect(a.uplink(), b.uplink(),
                                  sim::Network::symmetric(DataRate::mbps(50), 25_ms,
                                                          512 * 1024));
    phy::BernoulliLoss loss{0.01, Rng{31}};
    link.set_loss(0, &loss);
    quic::QuicStack ca{a};
    quic::QuicStack cb{b};
    quic::QuicConfig config;
    config.once_per_round_reduction = once_per_round;
    std::uint64_t got = 0;
    cb.listen(443, [&](quic::QuicConnection& c) {
      c.on_stream_data = [&](std::uint64_t n) { got += n; };
    }, config);
    quic::QuicConnection& conn = ca.connect(b.addr(), 443, config);
    conn.on_established = [&conn] { conn.send_stream(8'000'000); };
    simulator.run_until(TimePoint::epoch() + 30_s);
    return got;
  };
  const std::uint64_t eager = run(false);
  const std::uint64_t rfc = run(true);
  EXPECT_LE(eager, rfc);
  EXPECT_GT(eager, 0u);
}

TEST(Regression, IslModelBeatsFiberOnLongRoutes) {
  const auto sg = leo::isl_latency(leo::places::kLouvainLaNeuve, leo::places::kSingapore);
  const Duration fiber = leo::fiber_rtt(leo::places::kLouvainLaNeuve, leo::places::kSingapore);
  EXPECT_LT(sg.rtt, fiber);
  EXPECT_GT(sg.hops, 3);
  EXPECT_GT(sg.rtt.to_millis(), 70.0);   // physics floor
  EXPECT_LT(sg.rtt.to_millis(), 200.0);
  // Short routes: fiber wins (the up/down legs dominate).
  const auto brussels =
      leo::isl_latency(leo::places::kLouvainLaNeuve, leo::places::kBrussels);
  EXPECT_GT(brussels.rtt, leo::fiber_rtt(leo::places::kLouvainLaNeuve, leo::places::kBrussels));
}

TEST(Regression, AqmHookSeesQueueFraction) {
  sim::Simulator simulator{25};
  sim::Network net{simulator};
  sim::Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
  sim::Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
  sim::Link::Config config = sim::Network::symmetric(DataRate::mbps(1), 5_ms, 100'000);
  double max_fraction_seen = 0.0;
  config.a_to_b.aqm = [&](TimePoint, const sim::Packet&, double fraction) {
    max_fraction_seen = std::max(max_fraction_seen, fraction);
    return false;
  };
  net.connect(a.uplink(), b.uplink(), std::move(config));
  b.bind(sim::Protocol::kUdp, 1, [](const sim::Packet&) {});
  for (int i = 0; i < 100; ++i) {
    sim::Packet p;
    p.dst = b.addr();
    p.dst_port = 1;
    p.proto = sim::Protocol::kUdp;
    p.size_bytes = 1000;
    a.send(std::move(p));
  }
  simulator.run();
  // 100kB of backlog against a 100kB queue: the hook saw a nearly-full queue.
  EXPECT_GT(max_fraction_seen, 0.8);
}

}  // namespace
}  // namespace slp
