#include <gtest/gtest.h>

#include "phy/outage.hpp"
#include "sim/network.hpp"
#include "tcp/bbr.hpp"
#include "tcp/tcp.hpp"

namespace slp::cc {
namespace {

using namespace slp::literals;
using sim::make_addr;

TEST(Bbr, StartsInStartupWithInitialWindow) {
  Bbr bbr{CcConfig{}};
  EXPECT_EQ(bbr.state(), Bbr::State::kStartup);
  EXPECT_TRUE(bbr.in_slow_start());
  EXPECT_EQ(bbr.cwnd_bytes(), 10u * 1448u);
  EXPECT_EQ(bbr.name(), "bbr");
}

TEST(Bbr, IgnoresCongestionEvents) {
  Bbr bbr{CcConfig{}};
  // Feed it a steady 10 Mbit/s ack stream.
  TimePoint now;
  for (int i = 0; i < 200; ++i) {
    now = now + Duration::millis(5);
    bbr.on_ack(6250, Duration::millis(40), now);
  }
  const std::uint64_t before = bbr.cwnd_bytes();
  bbr.on_congestion_event(now);
  EXPECT_EQ(bbr.cwnd_bytes(), before);
}

TEST(Bbr, ConvergesToBdpMultipleOnSteadyStream) {
  Bbr bbr{CcConfig{}};
  // 25 Mbit/s, 40ms RTT -> BDP = 125 kB. cwnd gain in PROBE_BW is ~2x.
  TimePoint now;
  for (int i = 0; i < 3000; ++i) {
    now = now + Duration::millis(2);
    bbr.on_ack(6250, Duration::millis(40), now);  // 6250B / 2ms = 25 Mbit/s
  }
  EXPECT_NE(bbr.state(), Bbr::State::kStartup);
  EXPECT_NEAR(bbr.bandwidth_estimate().to_mbps(), 25.0, 6.0);
  EXPECT_NEAR(bbr.min_rtt_estimate().to_millis(), 40.0, 1.0);
  const double bdp = 25e6 / 8.0 * 0.040;
  EXPECT_GT(bbr.cwnd_bytes(), bdp * 0.9);
  EXPECT_LT(bbr.cwnd_bytes(), bdp * 3.5);
}

TEST(Bbr, RtoResetsTheModel) {
  Bbr bbr{CcConfig{}};
  TimePoint now;
  for (int i = 0; i < 500; ++i) {
    now = now + Duration::millis(2);
    bbr.on_ack(12500, Duration::millis(30), now);
  }
  bbr.on_rto(now);
  EXPECT_EQ(bbr.state(), Bbr::State::kStartup);
  EXPECT_LE(bbr.cwnd_bytes(), 4u * 1448u);
  EXPECT_TRUE(bbr.bandwidth_estimate().is_zero());
}

TEST(Bbr, FactoryCreatesIt) {
  EXPECT_EQ(make_controller(CcAlgorithm::kBbr)->name(), "bbr");
}

TEST(Bbr, EntersProbeRttWhenMinRttGoesStale) {
  Bbr bbr{CcConfig{}};
  TimePoint now;
  // Steady stream whose RTT only ever rises: min_rtt sampled early, then
  // stale for >10s -> PROBE_RTT dip must occur (cwnd floor, 4 segments).
  bool saw_probe_rtt = false;
  std::uint64_t min_cwnd_seen = ~0ull;
  for (int i = 0; i < 8000; ++i) {
    now = now + Duration::millis(2);
    const Duration rtt = Duration::millis(40) + Duration::millis(i / 200);  // creeping up
    bbr.on_ack(6250, rtt, now);
    if (bbr.state() == Bbr::State::kProbeRtt) {
      saw_probe_rtt = true;
      min_cwnd_seen = std::min(min_cwnd_seen, bbr.cwnd_bytes());
    }
  }
  EXPECT_TRUE(saw_probe_rtt);
  EXPECT_LE(min_cwnd_seen, 4u * 1448u);
  // And it leaves PROBE_RTT again.
  EXPECT_NE(bbr.state(), Bbr::State::kProbeRtt);
}

// End-to-end: BBR drives a full TCP transfer and beats loss-based control
// under heavy random loss.
TEST(BbrEndToEnd, SurvivesHeavyLossBetterThanNewReno) {
  auto run = [](CcAlgorithm algorithm) {
    sim::Simulator simulator{55};
    sim::Network net{simulator};
    sim::Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
    sim::Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
    sim::Link& link = net.connect(a.uplink(), b.uplink(),
                                  sim::Network::symmetric(DataRate::mbps(40), 20_ms,
                                                          512 * 1024));
    phy::BernoulliLoss loss{0.01, Rng{56}};
    link.set_loss(0, &loss);
    tcp::TcpStack sa{a};
    tcp::TcpStack sb{b};
    std::uint64_t delivered = 0;
    sb.listen(80, [&](tcp::TcpConnection& c) {
      c.on_data = [&](std::uint64_t n) { delivered += n; };
    });
    tcp::TcpConfig config;
    config.algorithm = algorithm;
    tcp::TcpConnection& conn = sa.connect(b.addr(), 80, config);
    conn.on_established = [&conn] { conn.send(30'000'000); };
    simulator.run_until(TimePoint::epoch() + 20_s);
    return delivered;
  };
  const std::uint64_t bbr = run(CcAlgorithm::kBbr);
  const std::uint64_t reno = run(CcAlgorithm::kNewReno);
  EXPECT_GT(bbr, reno * 2);  // loss-agnostic control dominates at 1% iid loss
}

TEST(BbrEndToEnd, CompletesCleanTransferNearLineRate) {
  sim::Simulator simulator{57};
  sim::Network net{simulator};
  sim::Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
  sim::Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
  net.connect(a.uplink(), b.uplink(),
              sim::Network::symmetric(DataRate::mbps(50), 15_ms, 1024 * 1024));
  tcp::TcpStack sa{a};
  tcp::TcpStack sb{b};
  std::uint64_t delivered = 0;
  TimePoint done;
  sb.listen(80, [&](tcp::TcpConnection& c) {
    c.on_data = [&](std::uint64_t n) {
      delivered += n;
      done = simulator.now();
    };
  });
  tcp::TcpConfig config;
  config.algorithm = CcAlgorithm::kBbr;
  tcp::TcpConnection& conn = sa.connect(b.addr(), 80, config);
  conn.on_established = [&conn] { conn.send(20'000'000); };
  simulator.run_until(TimePoint::epoch() + Duration::minutes(2));
  ASSERT_EQ(delivered, 20'000'000u);
  const double mbps = delivered * 8.0 / (done - TimePoint::epoch()).to_seconds() / 1e6;
  EXPECT_GT(mbps, 32.0);
  EXPECT_LE(mbps, 50.0);
}

}  // namespace
}  // namespace slp::cc
