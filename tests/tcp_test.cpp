#include <gtest/gtest.h>

#include "phy/outage.hpp"
#include "sim/network.hpp"
#include "tcp/congestion.hpp"
#include "tcp/tcp.hpp"

namespace slp::tcp {
namespace {

using namespace slp::literals;
using sim::make_addr;

// ------------------------------------------------------------ Congestion

TEST(Cubic, StartsAtInitialWindow) {
  cc::Cubic cubic{cc::CcConfig{}};
  EXPECT_EQ(cubic.cwnd_bytes(), 10u * 1448u);
  EXPECT_TRUE(cubic.in_slow_start());
  EXPECT_EQ(cubic.name(), "cubic");
}

TEST(Cubic, SlowStartDoublesPerRtt) {
  cc::Cubic cubic{cc::CcConfig{}};
  const std::uint64_t before = cubic.cwnd_bytes();
  // Acknowledge one full window.
  cubic.on_ack(before, 50_ms, TimePoint::epoch() + 50_ms);
  EXPECT_EQ(cubic.cwnd_bytes(), 2 * before);
}

TEST(Cubic, CongestionEventAppliesBeta) {
  cc::Cubic cubic{cc::CcConfig{}};
  cubic.on_ack(100'000, 50_ms, TimePoint::epoch() + 50_ms);
  const std::uint64_t before = cubic.cwnd_bytes();
  cubic.on_congestion_event(TimePoint::epoch() + 100_ms);
  EXPECT_NEAR(static_cast<double>(cubic.cwnd_bytes()), 0.7 * static_cast<double>(before),
              1500.0);
  EXPECT_FALSE(cubic.in_slow_start());
}

TEST(Cubic, RegrowsTowardWmaxAfterLoss) {
  cc::Cubic cubic{cc::CcConfig{}};
  TimePoint now = TimePoint::epoch();
  // Grow to ~1MB, then lose, then verify cubic growth recovers most of it.
  while (cubic.cwnd_bytes() < 1'000'000) {
    now = now + 50_ms;
    cubic.on_ack(cubic.cwnd_bytes(), 50_ms, now);
  }
  const std::uint64_t w_max = cubic.cwnd_bytes();
  cubic.on_congestion_event(now);
  const std::uint64_t reduced = cubic.cwnd_bytes();
  ASSERT_LT(reduced, w_max);
  for (int i = 0; i < 200; ++i) {
    now = now + 50_ms;
    cubic.on_ack(cubic.cwnd_bytes() / 2, 50_ms, now);
  }
  EXPECT_GT(cubic.cwnd_bytes(), reduced + (w_max - reduced) / 2);
}

TEST(Cubic, RtoCollapsesToMinWindow) {
  cc::Cubic cubic{cc::CcConfig{}};
  cubic.on_ack(500'000, 50_ms, TimePoint::epoch() + 50_ms);
  cubic.on_rto(TimePoint::epoch() + 1_s);
  EXPECT_EQ(cubic.cwnd_bytes(), 2u * 1448u);
}

TEST(NewReno, AdditiveIncreaseAfterLoss) {
  cc::NewReno reno{cc::CcConfig{}};
  reno.on_congestion_event(TimePoint::epoch());
  const std::uint64_t base = reno.cwnd_bytes();
  EXPECT_FALSE(reno.in_slow_start());
  // One cwnd of acked bytes -> exactly +1 MSS.
  reno.on_ack(base, 50_ms, TimePoint::epoch() + 50_ms);
  EXPECT_EQ(reno.cwnd_bytes(), base + 1448u);
}

TEST(NewReno, HalvesOnCongestion) {
  cc::NewReno reno{cc::CcConfig{}};
  reno.on_ack(200'000, 50_ms, TimePoint::epoch() + 50_ms);
  const std::uint64_t before = reno.cwnd_bytes();
  reno.on_congestion_event(TimePoint::epoch() + 100_ms);
  EXPECT_EQ(reno.cwnd_bytes(), before / 2);
}

TEST(CcFactory, MakesBothAlgorithms) {
  EXPECT_EQ(cc::make_controller(cc::CcAlgorithm::kCubic)->name(), "cubic");
  EXPECT_EQ(cc::make_controller(cc::CcAlgorithm::kNewReno)->name(), "newreno");
}

// ------------------------------------------------------------ Fixture

constexpr sim::Ipv4Addr kClientAddr = make_addr(10, 0, 0, 2);
constexpr sim::Ipv4Addr kServerAddr = make_addr(203, 0, 113, 10);

/// client --(rate, delay)-- server, directly connected.
class TcpLinkTest : public ::testing::Test {
 protected:
  void build(DataRate rate, Duration one_way_delay,
             std::size_t queue_bytes = 512 * 1024) {
    client_host_ = &net_.add_host("client", kClientAddr);
    server_host_ = &net_.add_host("server", kServerAddr);
    link_ = &net_.connect(client_host_->uplink(), server_host_->uplink(),
                          sim::Network::symmetric(rate, one_way_delay, queue_bytes));
    client_ = std::make_unique<TcpStack>(*client_host_);
    server_ = std::make_unique<TcpStack>(*server_host_);
  }

  sim::Simulator sim_{7};
  sim::Network net_{sim_};
  sim::Host* client_host_ = nullptr;
  sim::Host* server_host_ = nullptr;
  sim::Link* link_ = nullptr;
  std::unique_ptr<TcpStack> client_;
  std::unique_ptr<TcpStack> server_;
};

TEST_F(TcpLinkTest, HandshakeCompletesInOneRtt) {
  build(DataRate::mbps(100), 10_ms);
  bool client_up = false;
  bool server_up = false;
  TimePoint established_at;
  server_->listen(80, [&](TcpConnection& c) {
    c.on_established = [&] { server_up = true; };
  });
  TcpConnection& conn = client_->connect(kServerAddr, 80);
  conn.on_established = [&] {
    client_up = true;
    established_at = sim_.now();
  };
  sim_.run();
  EXPECT_TRUE(client_up);
  EXPECT_TRUE(server_up);
  // SYN + SYN/ACK = 1 RTT (20ms) plus tiny serialization.
  EXPECT_GE(established_at - TimePoint::epoch(), 20_ms);
  EXPECT_LT(established_at - TimePoint::epoch(), 21_ms);
  EXPECT_EQ(conn.state(), TcpState::kEstablished);
}

TEST_F(TcpLinkTest, TransfersExactByteCount) {
  build(DataRate::mbps(100), 5_ms);
  std::uint64_t delivered = 0;
  server_->listen(80, [&](TcpConnection& c) {
    c.on_data = [&](std::uint64_t n) { delivered += n; };
  });
  TcpConnection& conn = client_->connect(kServerAddr, 80);
  conn.on_established = [&conn] { conn.send(1'000'000); };
  sim_.run();
  EXPECT_EQ(delivered, 1'000'000u);
  EXPECT_EQ(conn.stats().bytes_acked, 1'000'000u);
  EXPECT_EQ(conn.bytes_in_flight(), 0u);
}

TEST_F(TcpLinkTest, ThroughputApproachesLinkRate) {
  build(DataRate::mbps(50), 10_ms, 1024 * 1024);
  std::uint64_t delivered = 0;
  TimePoint done_at;
  const std::uint64_t total = 20'000'000;  // 20 MB
  server_->listen(80, [&](TcpConnection& c) {
    c.on_data = [&](std::uint64_t n) {
      delivered += n;
      if (delivered >= total) done_at = c.state() == TcpState::kDone ? done_at : sim_.now();
    };
  });
  TcpConnection& conn = client_->connect(kServerAddr, 80);
  conn.on_established = [&conn] { conn.send(total); };
  sim_.run();
  ASSERT_EQ(delivered, total);
  const double seconds = (done_at - TimePoint::epoch()).to_seconds();
  const double goodput_mbps = total * 8.0 / seconds / 1e6;
  // Expect at least 80% of the 50 Mbit/s link after slow start.
  EXPECT_GT(goodput_mbps, 40.0);
  EXPECT_LE(goodput_mbps, 50.0);
}

TEST_F(TcpLinkTest, RecoversFromRandomLoss) {
  build(DataRate::mbps(50), 10_ms);
  phy::BernoulliLoss loss{0.02, Rng{3}};
  link_->set_loss(0, &loss);  // client -> server direction
  std::uint64_t delivered = 0;
  server_->listen(80, [&](TcpConnection& c) {
    c.on_data = [&](std::uint64_t n) { delivered += n; };
  });
  TcpConnection& conn = client_->connect(kServerAddr, 80);
  conn.on_established = [&conn] { conn.send(5'000'000); };
  sim_.run();
  EXPECT_EQ(delivered, 5'000'000u);
  EXPECT_GT(conn.stats().retransmissions, 0u);
  EXPECT_GT(conn.stats().fast_recoveries, 0u);
}

TEST_F(TcpLinkTest, SurvivesHeavyBidirectionalLoss) {
  build(DataRate::mbps(20), 20_ms);
  phy::BernoulliLoss loss_fwd{0.05, Rng{4}};
  phy::BernoulliLoss loss_rev{0.05, Rng{5}};
  link_->set_loss(0, &loss_fwd);
  link_->set_loss(1, &loss_rev);
  std::uint64_t delivered = 0;
  server_->listen(80, [&](TcpConnection& c) {
    c.on_data = [&](std::uint64_t n) { delivered += n; };
  });
  TcpConnection& conn = client_->connect(kServerAddr, 80);
  conn.on_established = [&conn] { conn.send(1'000'000); };
  sim_.run();
  EXPECT_EQ(delivered, 1'000'000u);
}

TEST_F(TcpLinkTest, DropTailQueueCausesFastRecoveryNotRto) {
  // Small queue at the bottleneck: cubic must overflow it and recover via
  // SACK/fast retransmit, with zero (or nearly zero) RTOs.
  build(DataRate::mbps(20), 25_ms, 128 * 1024);
  std::uint64_t delivered = 0;
  server_->listen(80, [&](TcpConnection& c) {
    c.on_data = [&](std::uint64_t n) { delivered += n; };
  });
  TcpConnection& conn = client_->connect(kServerAddr, 80);
  conn.on_established = [&conn] { conn.send(10'000'000); };
  sim_.run();
  EXPECT_EQ(delivered, 10'000'000u);
  EXPECT_GT(conn.stats().fast_recoveries, 0u);
  EXPECT_LE(conn.stats().rtos, 1u);
}

TEST_F(TcpLinkTest, RttSamplesReflectPathAndQueueing) {
  build(DataRate::mbps(10), 30_ms, 256 * 1024);
  std::vector<double> rtts;
  server_->listen(80, [](TcpConnection&) {});
  TcpConnection& conn = client_->connect(kServerAddr, 80);
  conn.on_rtt_sample = [&](Duration d) { rtts.push_back(d.to_millis()); };
  conn.on_established = [&conn] { conn.send(2'000'000); };
  sim_.run();
  ASSERT_GT(rtts.size(), 10u);
  for (const double r : rtts) EXPECT_GE(r, 60.0);  // never below 2x30ms
  // Under load the queue fills: max RTT must exceed the base RTT noticeably.
  const double max_rtt = *std::max_element(rtts.begin(), rtts.end());
  EXPECT_GT(max_rtt, 80.0);
}

TEST_F(TcpLinkTest, ReceiveWindowAutotunesUpFromDefault) {
  build(DataRate::mbps(200), 30_ms, 2 * 1024 * 1024);
  std::uint64_t delivered = 0;
  TcpConnection* server_conn = nullptr;
  server_->listen(80, [&](TcpConnection& c) {
    server_conn = &c;
    c.on_data = [&](std::uint64_t n) { delivered += n; };
  });
  TcpConnection& conn = client_->connect(kServerAddr, 80);
  conn.on_established = [&conn] { conn.send(30'000'000); };
  sim_.run();
  ASSERT_NE(server_conn, nullptr);
  EXPECT_EQ(delivered, 30'000'000u);
  // 131072 default must have grown towards the 6MB cap (BDP here is 1.5MB).
  EXPECT_GT(server_conn->rcv_buffer_bytes(), 1'000'000u);
  EXPECT_LE(server_conn->rcv_buffer_bytes(), 6'291'456u);
}

TEST_F(TcpLinkTest, RwndLimitsThroughputOnLongFatPath) {
  // 600ms RTT (GEO-like) at 100 Mbit/s: BDP = 7.5MB > 6MB rwnd cap, so
  // throughput must be rwnd/RTT ~ 80 Mbit/s, not the link rate.
  build(DataRate::mbps(100), 300_ms, 8 * 1024 * 1024);
  std::uint64_t delivered = 0;
  TimePoint first_byte;
  TimePoint last_byte;
  server_->listen(80, [&](TcpConnection& c) {
    c.on_data = [&](std::uint64_t n) {
      if (delivered == 0) first_byte = sim_.now();
      delivered += n;
      last_byte = sim_.now();
    };
  });
  TcpConnection& conn = client_->connect(kServerAddr, 80);
  conn.on_established = [&conn] { conn.send(60'000'000); };
  sim_.run();
  ASSERT_EQ(delivered, 60'000'000u);
  // Ignore slow-start: measure from 10s in.
  const double seconds = (last_byte - first_byte).to_seconds();
  const double mbps = delivered * 8.0 / seconds / 1e6;
  EXPECT_LT(mbps, 95.0);
  EXPECT_GT(mbps, 40.0);
}

TEST_F(TcpLinkTest, FinHandshakeClosesBothSides) {
  build(DataRate::mbps(100), 5_ms);
  bool server_closed = false;
  bool client_closed = false;
  server_->listen(80, [&](TcpConnection& c) {
    c.on_data = [&c](std::uint64_t) { c.close(); };
    c.on_closed = [&] { server_closed = true; };
  });
  TcpConnection& conn = client_->connect(kServerAddr, 80);
  conn.on_established = [&conn] {
    conn.send(1000);
    conn.close();
  };
  conn.on_closed = [&] { client_closed = true; };
  sim_.run();
  EXPECT_TRUE(client_closed);
  EXPECT_TRUE(server_closed);
  EXPECT_EQ(conn.state(), TcpState::kDone);
  client_->gc();
  EXPECT_EQ(client_->connection_count(), 0u);
}

TEST_F(TcpLinkTest, SynRetransmitsWithBackoffThenGivesUp) {
  build(DataRate::mbps(100), 5_ms);
  // Black-hole the forward direction entirely.
  class DropAll final : public sim::LossModel {
   public:
    bool should_drop(TimePoint, const sim::Packet&) override { return true; }
  };
  DropAll drop;
  link_->set_loss(0, &drop);
  bool error = false;
  server_->listen(80, [](TcpConnection&) {});
  TcpConnection& conn = client_->connect(kServerAddr, 80);
  conn.on_error = [&] { error = true; };
  sim_.run_until(TimePoint::epoch() + Duration::minutes(5));
  EXPECT_TRUE(error);
  EXPECT_EQ(conn.state(), TcpState::kDone);
}

TEST_F(TcpLinkTest, RtoRecoversFromAckBlackout) {
  build(DataRate::mbps(50), 10_ms);
  // Drop everything for 2 seconds in the middle of the transfer.
  class WindowDrop final : public sim::LossModel {
   public:
    bool should_drop(TimePoint now, const sim::Packet&) override {
      return now >= TimePoint::epoch() + Duration::millis(300) &&
             now < TimePoint::epoch() + Duration::millis(2300);
    }
  };
  WindowDrop drop;
  link_->set_loss(0, &drop);
  std::uint64_t delivered = 0;
  server_->listen(80, [&](TcpConnection& c) {
    c.on_data = [&](std::uint64_t n) { delivered += n; };
  });
  TcpConnection& conn = client_->connect(kServerAddr, 80);
  conn.on_established = [&conn] { conn.send(5'000'000); };
  sim_.run();
  EXPECT_EQ(delivered, 5'000'000u);
  EXPECT_GE(conn.stats().rtos, 1u);
}

TEST_F(TcpLinkTest, TwoConnectionsShareBottleneckRoughlyFairly) {
  build(DataRate::mbps(40), 15_ms, 512 * 1024);
  std::map<std::uint16_t, std::uint64_t> delivered;
  server_->listen(80, [&](TcpConnection& c) {
    c.on_data = [&delivered, &c](std::uint64_t n) { delivered[c.remote_port()] += n; };
  });
  TcpConnection& c1 = client_->connect(kServerAddr, 80);
  TcpConnection& c2 = client_->connect(kServerAddr, 80);
  c1.on_established = [&c1] { c1.send(50'000'000); };
  c2.on_established = [&c2] { c2.send(50'000'000); };
  sim_.run_until(TimePoint::epoch() + 10_s);
  ASSERT_EQ(delivered.size(), 2u);
  const double a = static_cast<double>(delivered[c1.local_port()]);
  const double b = static_cast<double>(delivered[c2.local_port()]);
  EXPECT_GT(a, 0.0);
  EXPECT_GT(b, 0.0);
  // Rough fairness: neither connection starves (>20% share).
  EXPECT_GT(std::min(a, b) / (a + b), 0.2);
  // Combined they saturate the link reasonably well.
  EXPECT_GT((a + b) * 8.0 / 10.0 / 1e6, 28.0);
}

TEST_F(TcpLinkTest, ServerToClientTransferWorks) {
  build(DataRate::mbps(100), 10_ms);
  std::uint64_t client_got = 0;
  server_->listen(80, [&](TcpConnection& c) {
    c.on_data = [&c](std::uint64_t) { c.send(500'000); };  // respond to request
  });
  TcpConnection& conn = client_->connect(kServerAddr, 80);
  conn.on_data = [&](std::uint64_t n) { client_got += n; };
  conn.on_established = [&conn] { conn.send(200); };  // "GET /"
  sim_.run();
  EXPECT_EQ(client_got, 500'000u);
}

}  // namespace
}  // namespace slp::tcp
