// mobility_test.cpp — the terminal-mobility subsystem (src/mobility/).
//
// Covers the layers and their contracts: Trajectory (closed-form waypoint
// kinematics: endpoint/midpoint pins, pause dwell, parking, odometer),
// ObstructionMask (heading-relative sector gating, wrap-around sectors, the
// tunnel full gate), the HandoverScheduler candidate-filter composition
// (mask gating on top of the elevation gate and the plane-health masks), the
// fleet's foreground cell migration accounting, and the determinism bars
// from the issue: a zero-speed route produces byte-identical exports to a
// static-terminal run, and the road-trip campaign's merged exports are
// --jobs and --fast-forward invariant.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "apps/ping.hpp"
#include "fleet/fleet.hpp"
#include "leo/access.hpp"
#include "leo/constellation.hpp"
#include "leo/handover.hpp"
#include "leo/places.hpp"
#include "measure/campaign.hpp"
#include "measure/testbed.hpp"
#include "mobility/mobile_terminal.hpp"
#include "mobility/obstruction.hpp"
#include "mobility/routes.hpp"
#include "mobility/trajectory.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "runner/sweep.hpp"
#include "sim/network.hpp"

namespace slp {
namespace {

using mobility::ObstructionMask;
using mobility::Trajectory;
using mobility::Waypoint;

TimePoint at(double seconds) {
  return TimePoint::epoch() + Duration::from_seconds(seconds);
}

// ------------------------------------------------------------- trajectory

TEST(Trajectory, EndpointsMidpointAndOdometer) {
  const double dist = leo::great_circle_distance_m(leo::places::kBrussels,
                                                   leo::places::kLouvainLaNeuve);
  const Trajectory traj = Trajectory::from_waypoints({
      {leo::places::kBrussels, 20.0, Duration::zero()},
      {leo::places::kLouvainLaNeuve, 0.0, Duration::zero()},
  });
  EXPECT_FALSE(traj.stationary());
  EXPECT_NEAR(traj.total_distance_m(), dist, 1.0);
  EXPECT_NEAR(traj.total_duration().to_seconds(), dist / 20.0, 0.1);

  const Trajectory::State start = traj.state_at(Duration::zero());
  EXPECT_NEAR(start.position.lat_deg, leo::places::kBrussels.lat_deg, 1e-9);
  EXPECT_NEAR(start.position.lon_deg, leo::places::kBrussels.lon_deg, 1e-9);
  EXPECT_TRUE(start.moving);
  EXPECT_NEAR(start.speed_mps, 20.0, 1e-12);
  EXPECT_NEAR(start.heading_deg,
              leo::initial_bearing_deg(leo::places::kBrussels, leo::places::kLouvainLaNeuve),
              0.5);

  // Negative elapsed clamps to the first waypoint.
  const Trajectory::State before = traj.state_at(Duration::seconds(-5));
  EXPECT_NEAR(before.position.lat_deg, leo::places::kBrussels.lat_deg, 1e-9);

  // Midpoint in time is the midpoint of a constant-speed great circle.
  const Trajectory::State mid = traj.state_at(traj.total_duration() * 0.5);
  EXPECT_NEAR(mid.distance_m, dist / 2.0, 1.0);
  EXPECT_NEAR(leo::great_circle_distance_m(leo::places::kBrussels, mid.position), dist / 2.0,
              10.0);

  // Past the end: parked at the destination, odometer complete.
  const Trajectory::State end = traj.state_at(traj.total_duration() + Duration::seconds(1));
  EXPECT_TRUE(end.finished);
  EXPECT_FALSE(end.moving);
  EXPECT_NEAR(end.speed_mps, 0.0, 1e-12);
  EXPECT_NEAR(end.position.lat_deg, leo::places::kLouvainLaNeuve.lat_deg, 1e-6);
  EXPECT_NEAR(end.position.lon_deg, leo::places::kLouvainLaNeuve.lon_deg, 1e-6);
  EXPECT_NEAR(end.distance_m, dist, 1.0);
}

TEST(Trajectory, PauseDwellsWithoutMoving) {
  const Trajectory traj = Trajectory::from_waypoints({
      {leo::places::kBrussels, 20.0, Duration::seconds(60)},
      {leo::places::kLouvainLaNeuve, 0.0, Duration::zero()},
  });
  const Trajectory::State paused = traj.state_at(Duration::seconds(30));
  EXPECT_FALSE(paused.moving);
  EXPECT_NEAR(paused.speed_mps, 0.0, 1e-12);
  EXPECT_NEAR(paused.position.lat_deg, leo::places::kBrussels.lat_deg, 1e-9);
  EXPECT_NEAR(paused.distance_m, 0.0, 1e-9);
  // Heading while paused = heading of the leg about to be driven.
  EXPECT_NEAR(paused.heading_deg,
              leo::initial_bearing_deg(leo::places::kBrussels, leo::places::kLouvainLaNeuve),
              1e-9);
  const Trajectory::State rolling = traj.state_at(Duration::seconds(61));
  EXPECT_TRUE(rolling.moving);
  EXPECT_GT(rolling.distance_m, 0.0);
}

TEST(Trajectory, NonPositiveSpeedParksTheRoute) {
  // No speed to leave Louvain-la-Neuve on: Amsterdam is unreachable.
  const Trajectory traj = Trajectory::from_waypoints({
      {leo::places::kBrussels, 20.0, Duration::zero()},
      {leo::places::kLouvainLaNeuve, 0.0, Duration::zero()},
      {leo::places::kAmsterdam, 30.0, Duration::zero()},
  });
  const double leg1 = leo::great_circle_distance_m(leo::places::kBrussels,
                                                   leo::places::kLouvainLaNeuve);
  EXPECT_NEAR(traj.total_distance_m(), leg1, 1.0);
  const Trajectory::State end = traj.state_at(Duration::days(1));
  EXPECT_TRUE(end.finished);
  EXPECT_NEAR(end.position.lat_deg, leo::places::kLouvainLaNeuve.lat_deg, 1e-6);
}

TEST(Trajectory, SingleWaypointIsStationary) {
  const Trajectory traj =
      Trajectory::from_waypoints({{leo::places::kBrussels, 0.0, Duration::zero()}});
  EXPECT_TRUE(traj.stationary());
  const Trajectory::State st = traj.state_at(Duration::seconds(100));
  EXPECT_TRUE(st.finished);
  EXPECT_FALSE(st.moving);
  EXPECT_NEAR(st.position.lat_deg, leo::places::kBrussels.lat_deg, 1e-9);
}

// ------------------------------------------------------------ obstruction

TEST(Obstruction, SectorGatesBelowItsMinElevation) {
  const ObstructionMask mask = ObstructionMask::sector(20.0, 160.0, 50.0);
  EXPECT_TRUE(mask.blocks(90.0, 40.0, 0.0));    // inside sector, below floor
  EXPECT_FALSE(mask.blocks(90.0, 60.0, 0.0));   // inside sector, above floor
  EXPECT_FALSE(mask.blocks(200.0, 5.0, 0.0));   // outside sector: open sky
  EXPECT_FALSE(mask.full_gate());
  const ObstructionMask open;
  EXPECT_FALSE(open.blocks(90.0, 0.5, 0.0));  // empty mask blocks nothing
}

TEST(Obstruction, SectorsAreHeadingRelative) {
  // The tree line sits 20..160 degrees off the *direction of travel*.
  const ObstructionMask mask = ObstructionMask::sector(20.0, 160.0, 50.0);
  // Heading east: absolute azimuth 110 is 20 degrees off the nose -> gated.
  EXPECT_TRUE(mask.blocks(110.0, 40.0, 90.0));
  // Absolute azimuth 90 is dead ahead (relative 0): outside the sector.
  EXPECT_FALSE(mask.blocks(90.0, 40.0, 90.0));
}

TEST(Obstruction, WrapAroundSectorAndTunnel) {
  const ObstructionMask wrap = ObstructionMask::sector(300.0, 60.0, 45.0);
  EXPECT_TRUE(wrap.blocks(350.0, 30.0, 0.0));
  EXPECT_TRUE(wrap.blocks(30.0, 30.0, 0.0));
  EXPECT_FALSE(wrap.blocks(120.0, 30.0, 0.0));

  const ObstructionMask tunnel = ObstructionMask::tunnel();
  EXPECT_TRUE(tunnel.full_gate());
  EXPECT_TRUE(tunnel.blocks(0.0, 89.9, 0.0));
  EXPECT_TRUE(tunnel.blocks(213.0, 45.0, 77.0));
}

// --------------------------------------------- scheduler filter composition

TEST(Handover, CandidateFilterComposesWithElevationGate) {
  leo::Constellation shell{leo::Constellation::Config{}};
  leo::HandoverScheduler::Config cfg;
  cfg.terminal = leo::places::kLouvainLaNeuve;
  cfg.gateways = leo::default_european_gateways();
  leo::HandoverScheduler sched{shell, cfg, Rng{99}};

  const TimePoint t = at(30.0);
  ASSERT_TRUE(sched.path_at(t).connected);
  const leo::SatIndex unfiltered = sched.path_at(t).sat;

  // A reject-everything filter is a tunnel: the slot goes unconnected even
  // though satellites are visible.
  sched.set_candidate_filter([](const leo::Constellation::VisibleSat&, double) {
    return false;
  });
  sched.invalidate();
  EXPECT_FALSE(sched.path_at(t).connected);

  // Uninstalling restores the exact pre-filter choice: the per-slot forked
  // RNG makes the recompute identical to never having filtered.
  sched.set_candidate_filter(nullptr);
  sched.invalidate();
  ASSERT_TRUE(sched.path_at(t).connected);
  EXPECT_EQ(sched.path_at(t).sat, unfiltered);

  // A mask-shaped filter composes on top of the dish elevation gate: every
  // serving satellite clears the raised floor.
  sched.set_candidate_filter([](const leo::Constellation::VisibleSat& s, double) {
    return s.elevation_deg >= 40.0;
  });
  sched.invalidate();
  for (int slot = 0; slot < 40; ++slot) {
    const auto& p = sched.path_at(TimePoint::epoch() + Duration::seconds(15 * slot));
    if (p.connected) {
      EXPECT_GE(p.terminal_elevation_deg, 40.0);
    }
  }

  // ... and with the fault-injection health masks.
  sched.set_plane_health(7, false);
  sched.invalidate();
  for (int slot = 0; slot < 40; ++slot) {
    const auto& p = sched.path_at(TimePoint::epoch() + Duration::seconds(15 * slot));
    if (p.connected) {
      EXPECT_GE(p.terminal_elevation_deg, 40.0);
      EXPECT_NE(p.sat.plane, 7);
    }
  }
}

// ------------------------------------------------------------ cell migration

TEST(FleetMigration, ForegroundCrossesCellBoundariesWithAccounting) {
  sim::Simulator sim{77};
  sim::Network net{sim};
  leo::StarlinkAccess access{net, {}};
  fleet::Fleet::Config config;
  config.size = 40;
  fleet::Fleet fleet{sim, access, config};

  const fleet::CellId home = fleet.foreground_cell();
  const auto before = fleet.totals();

  // Same position: no boundary crossed, no membership churn.
  EXPECT_FALSE(fleet.set_foreground_position(leo::places::kLouvainLaNeuve, at(5.0)));
  EXPECT_EQ(fleet.foreground_cell(), home);
  EXPECT_EQ(fleet.totals().attaches, before.attaches);
  EXPECT_EQ(fleet.totals().detaches, before.detaches);

  // ~120 km north-east: far outside the home cell.
  EXPECT_TRUE(fleet.set_foreground_position(leo::GeoPoint{51.7, 5.6, 0.0}, at(10.0)));
  EXPECT_NE(fleet.foreground_cell(), home);
  EXPECT_EQ(fleet.totals().attaches, before.attaches + 1);
  EXPECT_EQ(fleet.totals().detaches, before.detaches + 1);

  // Driving back re-homes into the original cell.
  EXPECT_TRUE(fleet.set_foreground_position(leo::places::kLouvainLaNeuve, at(20.0)));
  EXPECT_EQ(fleet.foreground_cell(), home);
  EXPECT_EQ(fleet.totals().attaches, before.attaches + 2);
  EXPECT_EQ(fleet.totals().detaches, before.detaches + 2);
}

// ------------------------------------------------------------- determinism

obs::Options full_obs() {
  obs::Options opts;
  opts.metrics = true;
  opts.trace = true;
  opts.provenance = true;
  return opts;
}

// The fast-path introspection metrics exist precisely to differ between the
// two fast-forward modes (see packet_path_test.cpp's identical helper).
std::string strip_event_count(const std::string& json) {
  std::istringstream in{json};
  std::string line, out;
  while (std::getline(in, line)) {
    if (line.find("sim.events_processed") != std::string::npos) continue;
    if (line.find("sim.ff.") != std::string::npos) continue;
    if (line.find("fast_path_active") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

TEST(MobilityDeterminism, ZeroSpeedRouteExportsMatchStaticRun) {
  // A parked mobile terminal must be observationally absent: byte-identical
  // metrics, trace and provenance exports to a run with no mobility at all.
  const auto run_once = [](bool with_parked_terminal) {
    measure::TestbedConfig cfg;
    cfg.seed = 5;
    cfg.obs = full_obs();
    if (with_parked_terminal) {
      cfg.mobility.route = *mobility::routes::lookup("rural");
      cfg.mobility.speed_scale = 0.0;
    }
    measure::Testbed bed{cfg};
    if (with_parked_terminal) {
      EXPECT_NE(bed.mobility(), nullptr);
      EXPECT_FALSE(bed.mobility()->plan_active());
    } else {
      EXPECT_EQ(bed.mobility(), nullptr);
    }
    apps::PingApp::Config ping_cfg;
    ping_cfg.target = bed.anchor(0).host->addr();
    ping_cfg.count = 4;
    ping_cfg.flow = 1;
    apps::PingApp app{bed.client(measure::AccessKind::kStarlink), ping_cfg};
    app.start();
    bed.sim().run();
    return bed.take_obs();
  };
  const obs::Snapshot without = run_once(false);
  const obs::Snapshot with = run_once(true);
  EXPECT_EQ(obs::metrics_json(without), obs::metrics_json(with));
  EXPECT_EQ(obs::trace_jsonl(without.events), obs::trace_jsonl(with.events));
  EXPECT_EQ(obs::breakdown_json(without), obs::breakdown_json(with));
}

TEST(MobilityDeterminism, RoadTripExportsAreJobsInvariant) {
  measure::RoadTripCampaign::Config config;
  config.route = "highway";
  config.duration = Duration::minutes(3);
  config.obs = full_obs();
  const auto one = runner::run_merged<measure::RoadTripCampaign>({2, 1}, config);
  const auto two = runner::run_merged<measure::RoadTripCampaign>({2, 2}, config);
  EXPECT_EQ(obs::metrics_json(one.obs), obs::metrics_json(two.obs));
  EXPECT_EQ(obs::trace_jsonl(one.obs.events), obs::trace_jsonl(two.obs.events));
  EXPECT_EQ(one.probes_sent, two.probes_sent);
  EXPECT_EQ(one.probes_lost, two.probes_lost);
  EXPECT_EQ(one.reroutes, two.reroutes);
  EXPECT_GT(one.probes_sent, 0u);
}

TEST(MobilityDeterminism, RoadTripExportsAreFastForwardInvariant) {
  measure::RoadTripCampaign::Config config;
  config.route = "highway";
  config.duration = Duration::minutes(3);
  config.obs = full_obs();
  config.fast_forward = true;
  const auto on = runner::run_merged<measure::RoadTripCampaign>({1, 1}, config);
  config.fast_forward = false;
  const auto off = runner::run_merged<measure::RoadTripCampaign>({1, 1}, config);
  EXPECT_EQ(strip_event_count(obs::metrics_json(on.obs)),
            strip_event_count(obs::metrics_json(off.obs)));
  EXPECT_EQ(obs::trace_jsonl(on.obs.events), obs::trace_jsonl(off.obs.events));
  EXPECT_EQ(on.probes_sent, off.probes_sent);
  EXPECT_EQ(on.probes_lost, off.probes_lost);
}

// ---------------------------------------------------------- campaign smoke

TEST(RoadTrip, HighwayRunProducesMotionArtifacts) {
  measure::RoadTripCampaign::Config config;
  config.route = "highway";
  config.fleet.size = 8;  // cell migrations need a fleet to migrate within
  const auto r = measure::RoadTripCampaign::run(config);
  EXPECT_GT(r.route_km, 80.0);
  EXPECT_GT(r.probes_sent, 1000u);
  EXPECT_GT(r.reroutes, 0u);          // in-motion handover pressure fired
  EXPECT_EQ(r.tunnels, 2u);           // the E40 run has two full gates
  EXPECT_GT(r.cell_migrations, 0u);   // Brussels -> Liege crosses cells
  EXPECT_FALSE(r.outage_s.empty());   // the tunnels force outages
  EXPECT_GT(r.outage_s.max(), 10.0);  // the long tunnel at highway speed
}

TEST(RoadTrip, UnknownRouteThrows) {
  measure::RoadTripCampaign::Config config;
  config.route = "does-not-exist";
  EXPECT_THROW((void)measure::RoadTripCampaign::run(config), std::invalid_argument);
}

}  // namespace
}  // namespace slp
