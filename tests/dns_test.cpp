#include <gtest/gtest.h>

#include "measure/campaign.hpp"
#include "sim/network.hpp"
#include "web/dns.hpp"

namespace slp::web {
namespace {

using namespace slp::literals;
using sim::make_addr;

class DnsFixture : public ::testing::Test {
 protected:
  DnsFixture() : net_{sim_} {
    client_ = &net_.add_host("client", make_addr(10, 0, 0, 2));
    server_host_ = &net_.add_host("resolver", make_addr(10, 0, 0, 53));
    link_ = &net_.connect(client_->uplink(), server_host_->uplink(),
                          sim::Network::symmetric(DataRate::mbps(100), 25_ms));
    server_ = std::make_unique<DnsServer>(*server_host_);
    server_->add_record("www.example.com", make_addr(203, 0, 113, 80));
    DnsResolver::Config config;
    config.server = server_host_->addr();
    resolver_ = std::make_unique<DnsResolver>(*client_, config);
  }

  sim::Simulator sim_{91};
  sim::Network net_;
  sim::Host* client_ = nullptr;
  sim::Host* server_host_ = nullptr;
  sim::Link* link_ = nullptr;
  std::unique_ptr<DnsServer> server_;
  std::unique_ptr<DnsResolver> resolver_;
};

TEST_F(DnsFixture, ResolvesKnownNameInOneRtt) {
  sim::Ipv4Addr got = 0;
  TimePoint answered;
  resolver_->resolve("www.example.com", [&](sim::Ipv4Addr addr) {
    got = addr;
    answered = sim_.now();
  });
  sim_.run();
  EXPECT_EQ(got, make_addr(203, 0, 113, 80));
  EXPECT_NEAR((answered - TimePoint::epoch()).to_millis(), 50.0, 1.0);
  EXPECT_EQ(server_->queries_served(), 1u);
}

TEST_F(DnsFixture, SecondLookupHitsTheCache) {
  int callbacks = 0;
  resolver_->resolve("www.example.com", [&](sim::Ipv4Addr) { ++callbacks; });
  sim_.run();
  TimePoint asked = sim_.now();
  TimePoint answered;
  resolver_->resolve("www.example.com", [&](sim::Ipv4Addr addr) {
    ++callbacks;
    answered = sim_.now();
    EXPECT_NE(addr, 0u);
  });
  sim_.run();
  EXPECT_EQ(callbacks, 2);
  EXPECT_EQ(answered, asked);  // synchronous cache hit
  EXPECT_EQ(resolver_->cache_hits(), 1u);
  EXPECT_EQ(resolver_->lookups_sent(), 1u);
}

TEST_F(DnsFixture, CacheExpiresAfterTtl) {
  resolver_->resolve("www.example.com", [](sim::Ipv4Addr) {});
  sim_.run();
  sim_.schedule_in(Duration::seconds(61), [&] {
    resolver_->resolve("www.example.com", [](sim::Ipv4Addr) {});
  });
  sim_.run();
  EXPECT_EQ(resolver_->lookups_sent(), 2u);  // re-resolved after TTL
}

TEST_F(DnsFixture, ConcurrentLookupsCoalesce) {
  int callbacks = 0;
  for (int i = 0; i < 5; ++i) {
    resolver_->resolve("www.example.com", [&](sim::Ipv4Addr addr) {
      ++callbacks;
      EXPECT_NE(addr, 0u);
    });
  }
  sim_.run();
  EXPECT_EQ(callbacks, 5);
  EXPECT_EQ(resolver_->lookups_sent(), 1u);
  EXPECT_EQ(server_->queries_served(), 1u);
}

TEST_F(DnsFixture, UnknownNameFails) {
  sim::Ipv4Addr got = 99;
  resolver_->resolve("nope.example.com", [&](sim::Ipv4Addr addr) { got = addr; });
  sim_.run();
  EXPECT_EQ(got, 0u);
  EXPECT_EQ(server_->queries_unknown(), 1u);
  EXPECT_EQ(resolver_->failures(), 1u);
}

TEST_F(DnsFixture, RetriesThroughLossThenGivesUp) {
  class DropAll final : public sim::LossModel {
   public:
    bool should_drop(TimePoint, const sim::Packet&) override { return true; }
  };
  DropAll drop;
  link_->set_loss(0, &drop);
  sim::Ipv4Addr got = 99;
  TimePoint finished;
  resolver_->resolve("www.example.com", [&](sim::Ipv4Addr addr) {
    got = addr;
    finished = sim_.now();
  });
  sim_.run();
  EXPECT_EQ(got, 0u);  // failed
  // 3 attempts x 2s timeout.
  EXPECT_NEAR((finished - TimePoint::epoch()).to_seconds(), 6.0, 0.1);
  EXPECT_EQ(resolver_->lookups_sent(), 3u);
}

TEST_F(DnsFixture, FlushForcesReResolution) {
  resolver_->resolve("www.example.com", [](sim::Ipv4Addr) {});
  sim_.run();
  resolver_->flush();
  resolver_->resolve("www.example.com", [](sim::Ipv4Addr) {});
  sim_.run();
  EXPECT_EQ(resolver_->lookups_sent(), 2u);
}

// DNS inside the QoE campaign: lookups add real latency per origin.
TEST(DnsCampaign, WebVisitsSlowerWithDns) {
  measure::WebCampaign::Config with_dns;
  with_dns.access = measure::AccessKind::kWired;
  with_dns.visits = 4;
  with_dns.catalog_sites = 6;
  measure::WebCampaign::Config without_dns = with_dns;
  without_dns.dns = false;
  const auto slow = measure::WebCampaign::run(with_dns);
  const auto fast = measure::WebCampaign::run(without_dns);
  ASSERT_EQ(slow.visits_completed, 4);
  ASSERT_EQ(fast.visits_completed, 4);
  EXPECT_GT(slow.onload_s.mean(), fast.onload_s.mean());
}

}  // namespace
}  // namespace slp::web
