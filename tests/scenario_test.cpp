// scenario_test — the deterministic environment/fault-injection subsystem.
//
// Covers the three layers: the Scenario parser/validator (format, per-kind
// keys, overlap rules), the Injector's hook application on a live
// StarlinkAccess (rain trapezoid, health masks, depth-counted hard-outage
// gate, load overrides), and the determinism contract (scenario runs are
// byte-identical across --jobs and measurably different from clear sky).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "leo/access.hpp"
#include "measure/campaign.hpp"
#include "obs/recorder.hpp"
#include "runner/sweep.hpp"
#include "scenario/injector.hpp"
#include "scenario/scenario.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace slp::scenario {
namespace {

using namespace slp::literals;

TimePoint at(Duration d) { return TimePoint::epoch() + d; }

// ---------------------------------------------------------------- parsing

TEST(ScenarioParse, FullFormatRoundTrip) {
  const Scenario s = Scenario::parse(R"(
# a comment, then a name line
scenario kitchen-sink

rain           start=60s end=20m ramp=2m attenuation_db=8
sat_fail       start=5m  end=12m plane=3 slot=7
plane_fail     start=1h  end=2h  plane=12
gateway_outage start=2m  end=4m  gateway=1
pop_outage     start=30s duration=15s   # duration= instead of end=
load_surge     start=1m  end=5m  utilization=0.92 direction=down
maintenance    start=10m end=12m period=15s blip=1500ms
)");
  EXPECT_EQ(s.name, "kitchen-sink");
  ASSERT_EQ(s.events.size(), 7u);
  EXPECT_EQ(s.events[0].kind, EventKind::kRain);
  EXPECT_EQ(s.events[0].start, at(60_s));
  EXPECT_EQ(s.events[0].end, at(Duration::minutes(20)));
  EXPECT_EQ(s.events[0].ramp, Duration::minutes(2));
  EXPECT_DOUBLE_EQ(s.events[0].attenuation_db, 8.0);
  EXPECT_EQ(s.events[1].kind, EventKind::kSatelliteFail);
  EXPECT_EQ(s.events[1].plane, 3);
  EXPECT_EQ(s.events[1].slot, 7);
  EXPECT_EQ(s.events[2].kind, EventKind::kPlaneFail);
  EXPECT_EQ(s.events[2].start, at(Duration::hours(1)));
  EXPECT_EQ(s.events[3].kind, EventKind::kGatewayOutage);
  EXPECT_EQ(s.events[3].gateway, 1);
  EXPECT_EQ(s.events[4].kind, EventKind::kPopOutage);
  EXPECT_EQ(s.events[4].end, at(45_s));  // start + duration
  EXPECT_EQ(s.events[5].kind, EventKind::kLoadSurge);
  EXPECT_DOUBLE_EQ(s.events[5].utilization, 0.92);
  EXPECT_EQ(s.events[5].direction, 1);
  EXPECT_EQ(s.events[6].kind, EventKind::kMaintenance);
  EXPECT_EQ(s.events[6].period, 15_s);
  EXPECT_EQ(s.events[6].blip, 1500_ms);
}

TEST(ScenarioParse, ErrorsCarryLineNumbers) {
  const auto expect_error = [](std::string_view text, std::string_view needle) {
    try {
      (void)Scenario::parse(text);
      FAIL() << "expected ScenarioError for: " << text;
    } catch (const ScenarioError& e) {
      EXPECT_NE(std::string_view{e.what()}.find(needle), std::string_view::npos)
          << "got: " << e.what();
    }
  };
  expect_error("earthquake start=1s end=2s", "unknown event kind");
  expect_error("rain start=1s end=2s plane=3", "plane");       // key of another kind
  expect_error("rain start=1s", "end");                        // missing end
  expect_error("rain start=5m end=1m", "end");                 // end <= start
  expect_error("rain start=soon end=2m", "duration");          // bad duration value
  expect_error("pop_outage start=1s end=2s duration=1s", "not both");
  expect_error("load_surge start=1s end=2s direction=sideways", "up|down|both");
  expect_error("sat_fail start=1s end=2s slot=4", "plane");    // missing index
}

TEST(ScenarioParse, SameKindSameTargetOverlapIsRejected) {
  // Two rain fronts over the same window: the restore hooks would fight.
  EXPECT_THROW((void)Scenario::parse("rain start=1m end=10m\n"
                                     "rain start=5m end=15m\n"),
               ScenarioError);
  // Same satellite failing twice while already failed.
  EXPECT_THROW((void)Scenario::parse("sat_fail start=1m end=10m plane=1 slot=2\n"
                                     "sat_fail start=5m end=15m plane=1 slot=2\n"),
               ScenarioError);
  // A both-directions surge clashes with a down surge.
  EXPECT_THROW((void)Scenario::parse("load_surge start=1m end=10m utilization=0.9\n"
                                     "load_surge start=5m end=15m utilization=0.8 direction=down\n"),
               ScenarioError);
}

TEST(ScenarioParse, DifferentKindOrTargetOverlapsFreely) {
  // Rain + plane failure + surge over the same minutes: independent hooks.
  EXPECT_NO_THROW((void)Scenario::parse("rain start=1m end=10m\n"
                                        "plane_fail start=2m end=8m plane=4\n"
                                        "load_surge start=3m end=6m utilization=0.9\n"));
  // Two different satellites of the same plane may fail together.
  EXPECT_NO_THROW((void)Scenario::parse("sat_fail start=1m end=10m plane=1 slot=2\n"
                                        "sat_fail start=2m end=8m plane=1 slot=3\n"));
  // Up and down surges do not share a knob.
  EXPECT_NO_THROW((void)Scenario::parse("load_surge start=1m end=10m direction=up\n"
                                        "load_surge start=2m end=8m direction=down\n"));
  // Back-to-back same-kind windows (touching, not overlapping) are fine.
  EXPECT_NO_THROW((void)Scenario::parse("rain start=1m end=2m\n"
                                        "rain start=2m end=3m\n"));
}

TEST(ScenarioBuilders, ChainAndValidateLikeTheParser) {
  Scenario s;
  s.rain(at(1_min), at(10_min), 6.0, 30_s)
      .plane_fail(at(2_min), at(8_min), 4)
      .pop_outage(at(3_min), at(4_min));
  EXPECT_NO_THROW(s.validate());
  EXPECT_EQ(s.events.size(), 3u);
  s.pop_outage(at(200_s), at(230_s));  // overlaps the 3m-4m pop outage
  EXPECT_THROW(s.validate(), ScenarioError);
}

TEST(ScenarioShift, MovesEveryEventAndRejectsNegativeStarts) {
  Scenario s;
  s.rain(at(1_min), at(2_min), 6.0);
  s.shift(Duration::hours(1));
  EXPECT_EQ(s.events[0].start, at(Duration::hours(1) + 1_min));
  EXPECT_EQ(s.events[0].end, at(Duration::hours(1) + 2_min));
  EXPECT_THROW(s.shift(-Duration::hours(2)), ScenarioError);
}

// ---------------------------------------------------------------- injector

class InjectorTest : public ::testing::Test {
 protected:
  InjectorTest() : net_{sim_}, access_{net_, leo::StarlinkAccess::Config{}} {}

  void inject(Scenario s) {
    injector_ = std::make_unique<Injector>(
        sim_, std::make_shared<const Scenario>(std::move(s)),
        Injector::Hooks{&access_});
  }

  sim::Simulator sim_{42};
  sim::Network net_;
  leo::StarlinkAccess access_;
  std::unique_ptr<Injector> injector_;
};

TEST_F(InjectorTest, RainRampsCapacityDownAndRestoresExactly) {
  const DataRate clear_sky = access_.downlink_capacity(TimePoint::epoch());
  Scenario s;
  s.rain(at(10_s), at(110_s), 10.0, 20_s);
  inject(std::move(s));

  sim_.run_until(at(5_s));
  EXPECT_DOUBLE_EQ(access_.rain_attenuation_db(), 0.0);

  // Mid-ramp: attenuation strictly between 0 and the peak.
  sim_.run_until(at(20_s));
  EXPECT_GT(access_.rain_attenuation_db(), 0.0);
  EXPECT_LT(access_.rain_attenuation_db(), 10.0);

  // Peak plateau: the full 10 dB is applied and capacity is well below
  // clear sky (relative spectral efficiency at 0 dB SNR ~ 0.29).
  sim_.run_until(at(60_s));
  EXPECT_DOUBLE_EQ(access_.rain_attenuation_db(), 10.0);
  const DataRate faded = access_.downlink_capacity(sim_.now());
  EXPECT_LT(faded.to_mbps(), clear_sky.to_mbps() * 0.6);

  // After the front: exact clear-sky restore.
  sim_.run_until(at(120_s));
  EXPECT_DOUBLE_EQ(access_.rain_attenuation_db(), 0.0);
  EXPECT_GT(injector_->stats().rain_steps, 16u);
}

TEST_F(InjectorTest, PlaneFailureMasksPlaneOnlyInsideWindow) {
  Scenario s;
  s.plane_fail(at(30_s), at(90_s), 7);
  inject(std::move(s));

  sim_.run_until(at(10_s));
  EXPECT_TRUE(access_.scheduler().satellite_healthy(leo::SatIndex{7, 0}));
  sim_.run_until(at(45_s));
  EXPECT_FALSE(access_.scheduler().satellite_healthy(leo::SatIndex{7, 3}));
  const auto& path = access_.scheduler().path_at(sim_.now());
  if (path.connected) {
    EXPECT_NE(path.sat.plane, 7);
  }
  sim_.run_until(at(100_s));
  EXPECT_TRUE(access_.scheduler().satellite_healthy(leo::SatIndex{7, 3}));
}

TEST_F(InjectorTest, GatewayOutageRehomesAndRestores) {
  Scenario s;
  s.gateway_outage(at(10_s), at(40_s), 0);
  inject(std::move(s));
  sim_.run_until(at(20_s));
  EXPECT_FALSE(access_.scheduler().gateway_healthy(0));
  const auto& path = access_.scheduler().path_at(sim_.now());
  if (path.connected) {
    EXPECT_NE(path.gateway, 0);
  }
  sim_.run_until(at(50_s));
  EXPECT_TRUE(access_.scheduler().gateway_healthy(0));
}

TEST_F(InjectorTest, HardOutageGateIsDepthCounted) {
  // A maintenance blip *inside* a PoP outage must not reopen the gate when
  // the blip ends — the outer window still holds it shut.
  Scenario s;
  s.pop_outage(at(10_s), at(60_s));
  s.maintenance(at(20_s), at(25_s), 15_s, 2_s);  // one blip: 20s..22s
  inject(std::move(s));

  sim_.run_until(at(5_s));
  EXPECT_FALSE(access_.in_hard_outage());
  sim_.run_until(at(15_s));
  EXPECT_TRUE(access_.in_hard_outage());
  sim_.run_until(at(30_s));  // blip over, pop outage still active
  EXPECT_TRUE(access_.in_hard_outage());
  sim_.run_until(at(70_s));
  EXPECT_FALSE(access_.in_hard_outage());
  EXPECT_EQ(injector_->stats().maintenance_blips, 1u);
}

TEST_F(InjectorTest, LoadSurgePinsDirectionAndReleases) {
  const auto downlink_share = [this] {
    return access_.downlink_capacity(sim_.now()).to_mbps() /
           access_.config().cell_downlink.to_mbps();
  };
  Scenario s;
  s.load_surge(at(10_s), at(40_s), 0.9, /*direction=*/1);
  inject(std::move(s));
  sim_.run_until(at(20_s));
  // Pinned: exactly (1 - 0.9) of cell capacity (clear sky, no epochs).
  EXPECT_NEAR(downlink_share(), 0.1, 1e-9);
  sim_.run_until(at(50_s));
  EXPECT_GT(downlink_share(), 0.1);  // AR(1) resumed (mean utilization 0.55)
}

TEST_F(InjectorTest, CountersAndSpansReflectTheTimeline) {
  obs::Options opts;
  opts.metrics = true;
  opts.trace = true;
  sim_.enable_obs(opts);
  Scenario s;
  s.name = "obs-check";
  s.rain(at(10_s), at(30_s), 6.0, 4_s);
  s.pop_outage(at(40_s), at(50_s));
  inject(std::move(s));
  sim_.run();

  EXPECT_EQ(injector_->stats().events_applied, 2u);
  auto snap = sim_.obs()->take_snapshot();
  EXPECT_EQ(snap.counters.at("scenario.events_applied"), 2u);
  EXPECT_EQ(snap.counters.at("scenario.rain.steps"),
            injector_->stats().rain_steps);
  std::size_t scenario_spans = 0;
  for (const auto& ev : snap.events) {
    if (ev.category == "scenario" && ev.phase == 'X') ++scenario_spans;
  }
  EXPECT_EQ(scenario_spans, 2u);
}

TEST_F(InjectorTest, SameInstantEventsApplyInScenarioOrder) {
  // Two load surges on different directions starting at the same instant,
  // plus a rain front: all start hooks fire at t=10s in file order. The
  // observable contract is that *all* of them are active right after.
  Scenario s;
  s.load_surge(at(10_s), at(20_s), 0.85, /*direction=*/0);
  s.load_surge(at(10_s), at(20_s), 0.9, /*direction=*/1);
  s.rain(at(10_s), at(20_s), 4.0);
  inject(std::move(s));
  sim_.run_until(at(15_s));
  EXPECT_DOUBLE_EQ(access_.rain_attenuation_db(), 4.0);
  const double up_share = access_.uplink_capacity(sim_.now()).to_mbps() /
                          access_.config().cell_uplink.to_mbps();
  // (1 - 0.85) x rain factor, both applied.
  EXPECT_LT(up_share, 0.15);
  EXPECT_EQ(injector_->stats().events_applied, 3u);
}

TEST(Injector, NullHooksIsAValidatedNoOp) {
  sim::Simulator sim{1};
  Scenario s;
  s.rain(TimePoint::epoch() + 1_s, TimePoint::epoch() + 2_s, 6.0);
  const Injector injector{sim, std::make_shared<const Scenario>(std::move(s)),
                          Injector::Hooks{}};
  sim.run();
  EXPECT_EQ(injector.stats().events_applied, 0u);

  Scenario bad;
  bad.rain(TimePoint::epoch() + 2_s, TimePoint::epoch() + 1_s, 6.0);
  EXPECT_THROW((Injector{sim, std::make_shared<const Scenario>(std::move(bad)),
                         Injector::Hooks{}}),
               ScenarioError);
}

// ------------------------------------------------------------- determinism

std::shared_ptr<const Scenario> rain_timeline() {
  Scenario s;
  s.name = "test-rain";
  // Heavy rain across the whole (short) speedtest campaign below.
  s.rain(TimePoint::epoch() + 5_s, TimePoint::epoch() + Duration::minutes(30), 10.0, 30_s);
  return std::make_shared<const Scenario>(std::move(s));
}

measure::SpeedtestCampaign::Config small_speedtest() {
  measure::SpeedtestCampaign::Config config;
  config.seed = 7;
  config.tests = 3;
  config.test_duration = 4_s;
  config.gap = 20_s;
  config.connections = 4;
  return config;
}

TEST(ScenarioDeterminism, MergedResultsAreIdenticalAcrossJobs) {
  auto config = small_speedtest();
  config.scenario = rain_timeline();
  config.obs.metrics = true;

  const auto serial =
      runner::run_merged<measure::SpeedtestCampaign>({/*seeds=*/2, /*jobs=*/1}, config);
  const auto parallel =
      runner::run_merged<measure::SpeedtestCampaign>({/*seeds=*/2, /*jobs=*/4}, config);

  ASSERT_EQ(serial.mbps.size(), parallel.mbps.size());
  for (std::size_t i = 0; i < serial.mbps.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.mbps.values()[i], parallel.mbps.values()[i]);
  }
  EXPECT_EQ(obs::metrics_json(serial.obs), obs::metrics_json(parallel.obs));
}

TEST(ScenarioDeterminism, RainFrontDepressesStarlinkThroughput) {
  const auto clear = measure::SpeedtestCampaign::run(small_speedtest());
  auto rainy_config = small_speedtest();
  rainy_config.scenario = rain_timeline();
  const auto rainy = measure::SpeedtestCampaign::run(rainy_config);

  ASSERT_FALSE(clear.mbps.empty());
  ASSERT_FALSE(rainy.mbps.empty());
  // 10 dB of rain leaves ~29% of clear-sky spectral efficiency; the measured
  // median must drop hard (not merely jitter).
  EXPECT_LT(rainy.mbps.median(), clear.mbps.median() * 0.7);
}

TEST(ScenarioDeterminism, ScenarioLeavesWiredAccessUntouched) {
  auto config = small_speedtest();
  config.access = measure::AccessKind::kWired;
  // Keep the packet-level 1 Gbit/s simulation short: two 1-second tests are
  // plenty to detect any scenario bleed into the wired path.
  config.tests = 2;
  config.test_duration = 1_s;
  config.connections = 2;
  const auto baseline = measure::SpeedtestCampaign::run(config);
  auto rainy_config = config;
  rainy_config.scenario = rain_timeline();
  const auto rainy = measure::SpeedtestCampaign::run(rainy_config);

  ASSERT_EQ(baseline.mbps.size(), rainy.mbps.size());
  for (std::size_t i = 0; i < baseline.mbps.size(); ++i) {
    EXPECT_DOUBLE_EQ(baseline.mbps.values()[i], rainy.mbps.values()[i]);
  }
}

TEST(ScenarioDeterminism, ExampleScenarioFilesAllLoad) {
  // Keep the shipped examples valid: parse + validate every one.
  for (const char* name :
       {"rain_front", "plane_failure", "pop_outage", "load_surge", "maintenance"}) {
    const std::string path = std::string{"examples/scenarios/"} + name + ".scn";
    SCOPED_TRACE(path);
    try {
      const Scenario s = Scenario::load(path);
      EXPECT_EQ(s.name, std::string_view{name} == "rain_front"    ? "rain-front"
                        : std::string_view{name} == "plane_failure" ? "plane-failure"
                        : std::string_view{name} == "pop_outage"    ? "pop-outage"
                        : std::string_view{name} == "load_surge"    ? "load-surge"
                                                                    : "maintenance");
      EXPECT_FALSE(s.empty());
    } catch (const ScenarioError& e) {
      // The test binary may run from a different working directory; only a
      // *parse* failure is a bug, a missing file is an environment detail.
      EXPECT_NE(std::string_view{e.what()}.find("cannot open"), std::string_view::npos)
          << e.what();
    }
  }
}

}  // namespace
}  // namespace slp::scenario
