#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/host.hpp"
#include "sim/link.hpp"
#include "sim/nat.hpp"
#include "sim/network.hpp"
#include "sim/routing.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace slp::sim {
namespace {

using namespace slp::literals;

// ------------------------------------------------------------ EventQueue

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint::epoch() + 3_ms, [&] { order.push_back(3); });
  q.schedule(TimePoint::epoch() + 1_ms, [&] { order.push_back(1); });
  q.schedule(TimePoint::epoch() + 2_ms, [&] { order.push_back(2); });
  while (!q.empty()) {
    auto fired = q.pop();
    fired.fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimestampIsFifo) {
  EventQueue q;
  std::vector<int> order;
  const TimePoint t = TimePoint::epoch() + 1_ms;
  for (int i = 0; i < 10; ++i) {
    q.schedule(t, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(TimePoint::epoch() + 1_ms, [&] { fired = true; });
  q.schedule(TimePoint::epoch() + 2_ms, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().fn();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  const EventId id = q.schedule(TimePoint::epoch(), [] {});
  (void)q.pop();
  q.cancel(id);  // must not underflow live count
  EXPECT_TRUE(q.empty());
  q.schedule(TimePoint::epoch() + 1_ms, [] {});
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelInvalidIdIsNoop) {
  EventQueue q;
  q.cancel(EventId{});
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EqualTimestampsFireInScheduleOrder) {
  // Determinism requirement: events at the same instant pop in scheduling
  // order, even with cancels interleaved (stale heap entries and slot reuse
  // must not perturb the FIFO sequence).
  EventQueue q;
  const TimePoint t = TimePoint::epoch() + 1_ms;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 32; ++i) {
    ids.push_back(q.schedule(t, [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 32; i += 3) q.cancel(ids[static_cast<std::size_t>(i)]);
  for (int i = 32; i < 48; ++i) {
    q.schedule(t, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  std::vector<int> expected;
  for (int i = 0; i < 48; ++i) {
    if (i < 32 && i % 3 == 0) continue;
    expected.push_back(i);
  }
  EXPECT_EQ(order, expected);
}

TEST(EventQueue, StaleIdCannotCancelRecycledSlot) {
  // After an event fires (or is cancelled) its slab slot is recycled for the
  // next schedule. The old EventId must not be able to cancel the new
  // occupant: the generation counter makes the stale handle a no-op.
  EventQueue q;
  const EventId old_id = q.schedule(TimePoint::epoch(), [] {});
  q.pop().fn();  // slot released, generation bumped
  bool fired = false;
  q.schedule(TimePoint::epoch() + 1_ms, [&] { fired = true; });
  q.cancel(old_id);  // stale generation: must not touch the new event
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().fn();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, RepeatedCancelBoundsHeapGrowth) {
  // Schedule/cancel churn without ever draining: compaction must keep the
  // heap O(live events), not O(cancels ever made).
  EventQueue q;
  for (int i = 0; i < 100'000; ++i) {
    const EventId id = q.schedule(TimePoint::epoch() + Duration::millis(i), [] {});
    q.cancel(id);
  }
  q.schedule(TimePoint::epoch() + 1_ms, [] {});
  EXPECT_EQ(q.size(), 1u);
  EXPECT_LT(q.heap_entries(), 1'000u);
  EXPECT_LT(q.slab_slots(), 1'000u);
}

// ------------------------------------------------------------ Simulator

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  TimePoint seen;
  sim.schedule_in(5_ms, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, TimePoint::epoch() + 5_ms);
  EXPECT_EQ(sim.events_processed(), 1u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  sim.schedule_in(1_ms, [&] { ++count; });
  sim.schedule_in(10_ms, [&] { ++count; });
  sim.run_until(TimePoint::epoch() + 5_ms);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now(), TimePoint::epoch() + 5_ms);
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_in(1_ms, recurse);
  };
  sim.schedule_in(1_ms, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), TimePoint::epoch() + 5_ms);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_in(Duration::millis(i), [&] {
      if (++count == 3) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.pending_events(), 7u);
}

TEST(Timer, RearmReplacesPending) {
  Simulator sim;
  Timer timer{sim};
  int fired = 0;
  timer.arm(1_ms, [&] { fired = 1; });
  timer.arm(2_ms, [&] { fired = 2; });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(timer.armed());
}

TEST(Timer, CancelPreventsFire) {
  Simulator sim;
  Timer timer{sim};
  bool fired = false;
  timer.arm(1_ms, [&] { fired = true; });
  timer.cancel();
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Timer, RepeatedRearmKeepsQueueBounded) {
  // A TCP/QUIC RTO timer re-arms on every ACK — millions of times per
  // simulated transfer, mostly without the simulator running in between.
  // Each re-arm cancels the pending event; the slab must recycle the slot
  // eagerly and compaction must keep the heap bounded, or the queue grows by
  // one entry per re-arm.
  Simulator sim;
  Timer timer{sim};
  int fired = 0;
  for (int i = 0; i < 100'000; ++i) {
    timer.arm(Duration::millis(1 + (i % 7)), [&] { ++fired; });
  }
  const EventQueue& q = sim.event_queue();
  EXPECT_EQ(q.size(), 1u);
  EXPECT_LT(q.heap_entries(), 1'000u);
  EXPECT_LT(q.slab_slots(), 1'000u);
  sim.run();
  EXPECT_EQ(fired, 1);  // only the last arm survives
}

TEST(Timer, DestructionCancels) {
  Simulator sim;
  bool fired = false;
  {
    Timer timer{sim};
    timer.arm(1_ms, [&] { fired = true; });
  }
  sim.run();
  EXPECT_FALSE(fired);
}

// ------------------------------------------------------------ Addressing

TEST(Address, DottedQuadFormatting) {
  EXPECT_EQ(addr_to_string(make_addr(192, 168, 1, 1)), "192.168.1.1");
  EXPECT_EQ(addr_to_string(make_addr(100, 64, 0, 1)), "100.64.0.1");
  EXPECT_EQ(kCpeNatAddr, make_addr(192, 168, 1, 1));
}

TEST(Address, PrefixMatching) {
  const Ipv4Addr net = make_addr(10, 1, 0, 0);
  EXPECT_TRUE(prefix_match(make_addr(10, 1, 2, 3), net, 16));
  EXPECT_FALSE(prefix_match(make_addr(10, 2, 0, 1), net, 16));
  EXPECT_TRUE(prefix_match(make_addr(1, 2, 3, 4), 0, 0));
  EXPECT_TRUE(prefix_match(net, net, 32));
  EXPECT_FALSE(prefix_match(net + 1, net, 32));
}

TEST(Packet, ChecksumCoversRewrittenFields) {
  Packet p;
  p.src = make_addr(10, 0, 0, 1);
  p.dst = make_addr(10, 0, 0, 2);
  p.src_port = 1000;
  p.dst_port = 443;
  p.proto = Protocol::kUdp;
  p.size_bytes = 100;
  refresh_checksum(p);
  const std::uint16_t before = p.checksum;
  p.src = make_addr(100, 64, 0, 1);  // NAT rewrite
  refresh_checksum(p);
  EXPECT_NE(p.checksum, before);
}

// ------------------------------------------------------------ Topology fixture

constexpr Ipv4Addr kClientAddr = make_addr(10, 0, 0, 2);
constexpr Ipv4Addr kServerAddr = make_addr(203, 0, 113, 10);
constexpr Ipv4Addr kRouterLeft = make_addr(10, 0, 0, 1);
constexpr Ipv4Addr kRouterRight = make_addr(203, 0, 113, 1);

/// client --(10 Mbit/s, 5 ms)-- router --(100 Mbit/s, 10 ms)-- server
class TwoLinkTopology : public ::testing::Test {
 protected:
  TwoLinkTopology() : net_{sim_} {
    client_ = &net_.add_host("client", kClientAddr);
    server_ = &net_.add_host("server", kServerAddr);
    router_ = &net_.add_router("r1");
    Interface& r_left = router_->add_interface(kRouterLeft);
    Interface& r_right = router_->add_interface(kRouterRight);
    access_ = &net_.connect(client_->uplink(), r_left,
                            Network::symmetric(DataRate::mbps(10), 5_ms));
    core_ = &net_.connect(r_right, server_->uplink(),
                          Network::symmetric(DataRate::mbps(100), 10_ms));
    router_->routes().add_route(make_addr(10, 0, 0, 0), 24, r_left);
    router_->routes().add_route(make_addr(203, 0, 113, 0), 24, r_right);
  }

  Simulator sim_;
  Network net_;
  Host* client_ = nullptr;
  Host* server_ = nullptr;
  Router* router_ = nullptr;
  Link* access_ = nullptr;
  Link* core_ = nullptr;
};

TEST_F(TwoLinkTopology, UdpDeliveredWithCorrectLatency) {
  TimePoint arrival;
  std::uint32_t got_size = 0;
  server_->bind(Protocol::kUdp, 443, [&](const Packet& p) {
    arrival = sim_.now();
    got_size = p.size_bytes;
  });
  Packet p;
  p.dst = kServerAddr;
  p.src_port = 50000;
  p.dst_port = 443;
  p.proto = Protocol::kUdp;
  p.size_bytes = 1250;
  client_->send(std::move(p));
  sim_.run();
  // Serialization: 1250B at 10 Mbit/s = 1 ms, at 100 Mbit/s = 0.1 ms.
  // Propagation: 5 + 10 ms. Total 16.1 ms.
  EXPECT_EQ(arrival, TimePoint::epoch() + Duration::from_millis(16.1));
  EXPECT_EQ(got_size, 1250u);
  EXPECT_EQ(router_->stats().forwarded, 1u);
}

TEST_F(TwoLinkTopology, PingMeasuresFullRtt) {
  Duration rtt = Duration::zero();
  client_->bind_echo_reply(7, [&](const Packet& p) {
    (void)p;
    rtt = sim_.now() - TimePoint::epoch();
  });
  Packet ping;
  ping.dst = kServerAddr;
  ping.proto = Protocol::kIcmp;
  ping.size_bytes = 64;
  ping.icmp = IcmpHeader{IcmpType::kEchoRequest, 7, 1, nullptr};
  client_->send(std::move(ping));
  sim_.run();
  // 64B serialization: 51.2us at 10Mbps + 5.12us at 100Mbps each way.
  const Duration one_way = Duration::from_micros(51.2) + 5_ms +
                           Duration::from_micros(5.12) + 10_ms;
  EXPECT_EQ(rtt, one_way * 2.0);
}

TEST_F(TwoLinkTopology, TtlExpiryYieldsTimeExceededFromRouter) {
  Ipv4Addr reporter = 0;
  IcmpType type{};
  std::uint16_t quoted_port = 0;
  client_->add_error_listener([&](const Packet& p) {
    reporter = p.src;
    type = p.icmp->type;
    quoted_port = p.icmp->quoted->src_port;
  });
  Packet probe;
  probe.dst = kServerAddr;
  probe.src_port = 33434;
  probe.dst_port = 33434;
  probe.proto = Protocol::kUdp;
  probe.size_bytes = 60;
  probe.ttl = 1;
  client_->send(std::move(probe));
  sim_.run();
  EXPECT_EQ(reporter, kRouterLeft);
  EXPECT_EQ(type, IcmpType::kTimeExceeded);
  EXPECT_EQ(quoted_port, 33434);
  EXPECT_EQ(router_->stats().ttl_expired, 1u);
}

TEST_F(TwoLinkTopology, RouterAnswersPingToItsOwnAddress) {
  bool got_reply = false;
  client_->bind_echo_reply(9, [&](const Packet&) { got_reply = true; });
  Packet ping;
  ping.dst = kRouterLeft;
  ping.proto = Protocol::kIcmp;
  ping.size_bytes = 64;
  ping.icmp = IcmpHeader{IcmpType::kEchoRequest, 9, 1, nullptr};
  client_->send(std::move(ping));
  sim_.run();
  EXPECT_TRUE(got_reply);
}

TEST_F(TwoLinkTopology, NoRouteYieldsDestUnreachable) {
  IcmpType type{};
  bool got = false;
  client_->add_error_listener([&](const Packet& p) {
    got = true;
    type = p.icmp->type;
  });
  Packet p;
  p.dst = make_addr(8, 8, 8, 8);  // no route on router
  p.proto = Protocol::kUdp;
  p.src_port = 1;
  p.dst_port = 2;
  p.size_bytes = 100;
  client_->send(std::move(p));
  sim_.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(type, IcmpType::kDestUnreachable);
}

TEST_F(TwoLinkTopology, QueueOverflowDropsTail) {
  // Flood 200 x 12500B = 2.5MB into a 256KB queue at 10 Mbit/s.
  int delivered = 0;
  server_->bind(Protocol::kUdp, 443, [&](const Packet&) { ++delivered; });
  for (int i = 0; i < 200; ++i) {
    Packet p;
    p.dst = kServerAddr;
    p.src_port = 50000;
    p.dst_port = 443;
    p.proto = Protocol::kUdp;
    p.size_bytes = 12'500;
    client_->send(std::move(p));
  }
  sim_.run();
  const auto& st = access_->stats_a_to_b();
  EXPECT_GT(st.dropped_overflow, 0u);
  EXPECT_EQ(st.delivered_packets + st.dropped_overflow, 200u);
  EXPECT_EQ(delivered, static_cast<int>(st.delivered_packets));
}

TEST_F(TwoLinkTopology, BackToBackPacketsSerializeSequentially) {
  std::vector<TimePoint> arrivals;
  server_->bind(Protocol::kUdp, 443, [&](const Packet&) { arrivals.push_back(sim_.now()); });
  for (int i = 0; i < 3; ++i) {
    Packet p;
    p.dst = kServerAddr;
    p.src_port = 50000;
    p.dst_port = 443;
    p.proto = Protocol::kUdp;
    p.size_bytes = 1250;  // 1ms at 10 Mbit/s
    client_->send(std::move(p));
  }
  sim_.run();
  ASSERT_EQ(arrivals.size(), 3u);
  // Bottleneck spacing = serialization time on the slow link (1 ms).
  EXPECT_EQ(arrivals[1] - arrivals[0], 1_ms);
  EXPECT_EQ(arrivals[2] - arrivals[1], 1_ms);
}

TEST_F(TwoLinkTopology, CaptureSeesBothDirections) {
  PacketTrace trace;
  trace.attach(*client_);
  server_->bind(Protocol::kUdp, 443, [](const Packet&) {});
  bool got_reply = false;
  client_->bind_echo_reply(3, [&](const Packet&) { got_reply = true; });
  Packet ping;
  ping.dst = kServerAddr;
  ping.proto = Protocol::kIcmp;
  ping.size_bytes = 64;
  ping.icmp = IcmpHeader{IcmpType::kEchoRequest, 3, 1, nullptr};
  client_->send(std::move(ping));
  sim_.run();
  ASSERT_TRUE(got_reply);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_TRUE(trace.records()[0].outbound);
  EXPECT_FALSE(trace.records()[1].outbound);
  const auto outbound = trace.filter([](const CaptureRecord& r) { return r.outbound; });
  EXPECT_EQ(outbound.size(), 1u);
}

TEST_F(TwoLinkTopology, TraceFilterPreservesCaptureOrder) {
  PacketTrace trace;
  trace.attach(*client_);
  server_->bind(Protocol::kUdp, 443, [](const Packet&) {});
  for (std::uint16_t i = 0; i < 5; ++i) {
    Packet p;
    p.dst = kServerAddr;
    p.src_port = static_cast<std::uint16_t>(40000 + i);
    p.dst_port = 443;
    p.proto = Protocol::kUdp;
    p.size_bytes = 100;
    client_->send(std::move(p));
  }
  sim_.run();
  ASSERT_EQ(trace.size(), 5u);
  // Filter keeps capture order even for a subset predicate.
  const auto odd = trace.filter(
      [](const CaptureRecord& r) { return (r.pkt.src_port % 2) == 1; });
  ASSERT_EQ(odd.size(), 2u);
  EXPECT_EQ(odd[0].pkt.src_port, 40001u);
  EXPECT_EQ(odd[1].pkt.src_port, 40003u);
  EXPECT_LE(odd[0].at, odd[1].at);
}

TEST_F(TwoLinkTopology, TraceDetachStopsCaptureAndIsIdempotent) {
  PacketTrace trace;
  trace.attach(*client_);
  server_->bind(Protocol::kUdp, 443, [](const Packet&) {});
  const auto send_one = [&] {
    Packet p;
    p.dst = kServerAddr;
    p.src_port = 50000;
    p.dst_port = 443;
    p.proto = Protocol::kUdp;
    p.size_bytes = 100;
    client_->send(std::move(p));
    sim_.run();
  };
  send_one();
  EXPECT_EQ(trace.size(), 1u);
  trace.detach();
  trace.detach();  // second detach must be a no-op, not a crash
  send_one();
  // Records survive detach; nothing new is captured.
  EXPECT_EQ(trace.size(), 1u);
}

TEST_F(TwoLinkTopology, TraceDestructionReleasesCaptureHook) {
  server_->bind(Protocol::kUdp, 443, [](const Packet&) {});
  const auto send_one = [&] {
    Packet p;
    p.dst = kServerAddr;
    p.src_port = 50000;
    p.dst_port = 443;
    p.proto = Protocol::kUdp;
    p.size_bytes = 100;
    client_->send(std::move(p));
    sim_.run();
  };
  {
    PacketTrace trace;
    trace.attach(*client_);
    send_one();
    EXPECT_EQ(trace.size(), 1u);
  }
  // The destroyed trace's hook must be gone: sending again may not touch the
  // dead object (ASan would catch it), and a fresh trace can take over.
  send_one();
  PacketTrace next;
  next.attach(*client_);
  send_one();
  EXPECT_EQ(next.size(), 1u);
}

// ------------------------------------------------------------ Link dynamics

TEST(Link, DynamicDelayFunctionIsSampled) {
  Simulator sim;
  Network net{sim};
  Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
  Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
  Link::Config config = Network::symmetric(DataRate::gbps(10), 1_ms);
  config.a_to_b.delay_fn = [&sim](TimePoint) {
    return sim.now() < TimePoint::epoch() + 1_s ? Duration::millis(10) : Duration::millis(20);
  };
  net.connect(a.uplink(), b.uplink(), config);

  std::vector<TimePoint> arrivals;
  b.bind(Protocol::kUdp, 1, [&](const Packet&) { arrivals.push_back(sim.now()); });
  auto send_one = [&] {
    Packet p;
    p.dst = b.addr();
    p.dst_port = 1;
    p.proto = Protocol::kUdp;
    p.size_bytes = 125;
    a.send(std::move(p));
  };
  sim.schedule_in(Duration::zero(), send_one);
  sim.schedule_in(2_s, send_one);
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  const Duration ser = DataRate::gbps(10).transmission_time(125);
  EXPECT_EQ(arrivals[0], TimePoint::epoch() + ser + 10_ms);
  EXPECT_EQ(arrivals[1], TimePoint::epoch() + 2_s + ser + 20_ms);
}

TEST(Link, LossModelDropsButCountsTransmission) {
  class DropAll final : public LossModel {
   public:
    bool should_drop(TimePoint, const Packet&) override { return true; }
  };
  Simulator sim;
  Network net{sim};
  Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
  Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
  DropAll loss;
  Link::Config config = Network::symmetric(DataRate::mbps(10), 1_ms);
  config.a_to_b.loss = &loss;
  Link& link = net.connect(a.uplink(), b.uplink(), config);

  int delivered = 0;
  b.bind(Protocol::kUdp, 1, [&](const Packet&) { ++delivered; });
  Packet p;
  p.dst = b.addr();
  p.dst_port = 1;
  p.proto = Protocol::kUdp;
  p.size_bytes = 1000;
  a.send(std::move(p));
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(link.stats_a_to_b().tx_packets, 1u);
  EXPECT_EQ(link.stats_a_to_b().dropped_medium, 1u);
  EXPECT_EQ(link.stats_a_to_b().delivered_packets, 0u);
}

// ------------------------------------------------------------ NAT

constexpr Ipv4Addr kLanHost = make_addr(192, 168, 1, 100);
constexpr Ipv4Addr kNatExternal = make_addr(100, 70, 1, 5);

class NatTopology : public ::testing::Test {
 protected:
  NatTopology() : net_{sim_} {
    client_ = &net_.add_host("client", kLanHost);
    server_ = &net_.add_host("server", kServerAddr);
    nat_ = &net_.add_nat("cpe", kCpeNatAddr, kNatExternal);
    net_.connect(client_->uplink(), nat_->inside(),
                 Network::symmetric(DataRate::gbps(1), 1_ms));
    net_.connect(nat_->outside(), server_->uplink(),
                 Network::symmetric(DataRate::mbps(100), 10_ms));
  }

  Simulator sim_;
  Network net_;
  Host* client_ = nullptr;
  Host* server_ = nullptr;
  Nat* nat_ = nullptr;
};

TEST_F(NatTopology, OutboundRewritesSourceAndInboundRestores) {
  Ipv4Addr seen_src = 0;
  std::uint16_t seen_port = 0;
  server_->bind(Protocol::kUdp, 443, [&](const Packet& p) {
    seen_src = p.src;
    seen_port = p.src_port;
    // Reply to what the server observed.
    Packet reply;
    reply.dst = p.src;
    reply.dst_port = p.src_port;
    reply.src_port = 443;
    reply.proto = Protocol::kUdp;
    reply.size_bytes = 200;
    server_->send(std::move(reply));
  });
  bool client_got_reply = false;
  client_->bind(Protocol::kUdp, 50'000, [&](const Packet& p) {
    client_got_reply = true;
    EXPECT_EQ(p.dst, kLanHost);
    EXPECT_EQ(p.dst_port, 50'000);
  });
  Packet p;
  p.dst = kServerAddr;
  p.src_port = 50'000;
  p.dst_port = 443;
  p.proto = Protocol::kUdp;
  p.size_bytes = 100;
  client_->send(std::move(p));
  sim_.run();
  EXPECT_EQ(seen_src, kNatExternal);
  EXPECT_NE(seen_port, 50'000);  // mapped to an external port
  EXPECT_TRUE(client_got_reply);
  EXPECT_EQ(nat_->stats().translated_out, 1u);
  EXPECT_EQ(nat_->stats().translated_in, 1u);
  EXPECT_EQ(nat_->mapping_count(), 1u);
}

TEST_F(NatTopology, SameFlowReusesMapping) {
  server_->bind(Protocol::kUdp, 443, [](const Packet&) {});
  for (int i = 0; i < 3; ++i) {
    Packet p;
    p.dst = kServerAddr;
    p.src_port = 50'000;
    p.dst_port = 443;
    p.proto = Protocol::kUdp;
    p.size_bytes = 100;
    client_->send(std::move(p));
  }
  sim_.run();
  EXPECT_EQ(nat_->mapping_count(), 1u);
  EXPECT_EQ(nat_->stats().translated_out, 3u);
}

TEST_F(NatTopology, TracerouteRevealsNatLanAddress) {
  Ipv4Addr hop1 = 0;
  client_->add_error_listener([&](const Packet& p) { hop1 = p.src; });
  Packet probe;
  probe.dst = kServerAddr;
  probe.src_port = 33434;
  probe.dst_port = 33434;
  probe.proto = Protocol::kUdp;
  probe.size_bytes = 60;
  probe.ttl = 1;
  client_->send(std::move(probe));
  sim_.run();
  // The paper's first traceroute hop on Starlink: 192.168.1.1.
  EXPECT_EQ(hop1, kCpeNatAddr);
}

TEST_F(NatTopology, PingTraversesNat) {
  bool got_reply = false;
  client_->bind_echo_reply(21, [&](const Packet&) { got_reply = true; });
  Packet ping;
  ping.dst = kServerAddr;
  ping.proto = Protocol::kIcmp;
  ping.size_bytes = 64;
  ping.icmp = IcmpHeader{IcmpType::kEchoRequest, 21, 1, nullptr};
  client_->send(std::move(ping));
  sim_.run();
  EXPECT_TRUE(got_reply);
}

TEST_F(NatTopology, IcmpErrorBeyondNatIsTranslatedBack) {
  // TTL=2: expires at the server-side... actually reaches server. Use a
  // router beyond the NAT instead: rebuild a deeper topology inline.
  Simulator sim;
  Network net{sim};
  Host& client = net.add_host("client", kLanHost);
  Host& server = net.add_host("server", kServerAddr);
  Nat& nat = net.add_nat("cpe", kCpeNatAddr, kNatExternal);
  Router& core = net.add_router("core");
  Interface& core_left = core.add_interface(make_addr(100, 70, 1, 1));
  Interface& core_right = core.add_interface(make_addr(203, 0, 113, 1));
  net.connect(client.uplink(), nat.inside(), Network::symmetric(DataRate::gbps(1), 1_ms));
  net.connect(nat.outside(), core_left, Network::symmetric(DataRate::gbps(1), 1_ms));
  net.connect(core_right, server.uplink(), Network::symmetric(DataRate::gbps(1), 1_ms));
  core.routes().add_route(make_addr(100, 70, 1, 0), 24, core_left);
  core.routes().add_route(make_addr(203, 0, 113, 0), 24, core_right);

  Ipv4Addr hop2 = 0;
  std::uint16_t quoted_port = 0;
  Ipv4Addr quoted_src = 0;
  client.add_error_listener([&](const Packet& p) {
    hop2 = p.src;
    quoted_port = p.icmp->quoted->src_port;
    quoted_src = p.icmp->quoted->src;
  });
  Packet probe;
  probe.dst = kServerAddr;
  probe.src_port = 33435;
  probe.dst_port = 33434;
  probe.proto = Protocol::kUdp;
  probe.size_bytes = 60;
  probe.ttl = 2;  // expires at the core router, beyond the NAT
  client.send(std::move(probe));
  sim.run();
  EXPECT_EQ(hop2, make_addr(100, 70, 1, 1));
  // The NAT translated the quote back to the client's view...
  EXPECT_EQ(quoted_port, 33435u);
  EXPECT_EQ(quoted_src, kLanHost);
}

TEST_F(NatTopology, InboundWithoutMappingIsDropped) {
  bool delivered = false;
  client_->bind(Protocol::kUdp, 1234, [&](const Packet&) { delivered = true; });
  Packet p;
  p.dst = kNatExternal;
  p.src_port = 9;
  p.dst_port = 4242;  // never mapped
  p.proto = Protocol::kUdp;
  p.size_bytes = 100;
  server_->send(std::move(p));
  sim_.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(nat_->stats().dropped_no_mapping, 1u);
}

}  // namespace
}  // namespace slp::sim
