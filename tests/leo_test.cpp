#include <gtest/gtest.h>

#include <set>

#include "leo/access.hpp"
#include "leo/constellation.hpp"
#include "leo/geodesy.hpp"
#include "leo/handover.hpp"
#include "leo/places.hpp"
#include "sim/network.hpp"

namespace slp::leo {
namespace {

using namespace slp::literals;

// ------------------------------------------------------------ Geodesy

TEST(Geodesy, EcefOfReferencePoints) {
  const Vec3 equator = to_ecef(GeoPoint{0.0, 0.0, 0.0});
  EXPECT_NEAR(equator.x, kEarthRadiusM, 1.0);
  EXPECT_NEAR(equator.y, 0.0, 1.0);
  EXPECT_NEAR(equator.z, 0.0, 1.0);
  const Vec3 pole = to_ecef(GeoPoint{90.0, 0.0, 0.0});
  EXPECT_NEAR(pole.z, kEarthRadiusM, 1.0);
  EXPECT_NEAR(pole.x, 0.0, 1e-6 * kEarthRadiusM);
  const Vec3 high = to_ecef(GeoPoint{0.0, 90.0, 550'000.0});
  EXPECT_NEAR(high.y, kEarthRadiusM + 550'000.0, 1.0);
}

TEST(Geodesy, GreatCircleKnownDistances) {
  // Brussels <-> Amsterdam is ~174 km.
  const double d = great_circle_distance_m(places::kBrussels, places::kAmsterdam);
  EXPECT_NEAR(d, 174'000.0, 10'000.0);
  // Brussels <-> Singapore is ~10,500 km.
  const double far = great_circle_distance_m(places::kBrussels, places::kSingapore);
  EXPECT_NEAR(far, 10'500'000.0, 300'000.0);
  // Identity.
  EXPECT_NEAR(great_circle_distance_m(places::kBrussels, places::kBrussels), 0.0, 1e-6);
}

TEST(Geodesy, ElevationOfZenithSatelliteIs90) {
  const GeoPoint ground{50.0, 4.0, 0.0};
  const Vec3 overhead = to_ecef(GeoPoint{50.0, 4.0, 550'000.0});
  EXPECT_NEAR(elevation_deg(ground, overhead), 90.0, 0.01);
}

TEST(Geodesy, ElevationOfAntipodalSatelliteIsNegative) {
  const GeoPoint ground{0.0, 0.0, 0.0};
  const Vec3 antipode = to_ecef(GeoPoint{0.0, 180.0, 550'000.0});
  EXPECT_LT(elevation_deg(ground, antipode), 0.0);
}

TEST(Geodesy, SlantRangeZenithEqualsAltitude) {
  const GeoPoint ground{50.0, 4.0, 0.0};
  const Vec3 overhead = to_ecef(GeoPoint{50.0, 4.0, 550'000.0});
  EXPECT_NEAR(slant_range_m(ground, overhead), 550'000.0, 1.0);
}

TEST(Geodesy, RfPropagationDelayIsDistanceOverC) {
  // ~300 km of RF path is almost exactly 1 ms; ~300,000 km is 1 s.
  EXPECT_NEAR(rf_propagation_delay(299'792.458).to_millis(), 1.0, 1e-9);
  EXPECT_NEAR(rf_propagation_delay(299'792'458.0).to_seconds(), 1.0, 1e-9);
}

TEST(Geodesy, FiberDelayExceedsRfForSameEndpoints) {
  const Duration fiber = fiber_delay(places::kBrussels, places::kNewYork);
  const double direct_m = great_circle_distance_m(places::kBrussels, places::kNewYork);
  const Duration rf = rf_propagation_delay(direct_m);
  EXPECT_GT(fiber, rf * 2.0);  // 1.7 stretch * 1.5 glass factor = 2.55x
}

// ------------------------------------------------------------ Constellation

class Shell1Test : public ::testing::Test {
 protected:
  Constellation shell_{Constellation::Config{}};
};

TEST_F(Shell1Test, CountsAndPeriod) {
  EXPECT_EQ(shell_.total_satellites(), 72 * 22);
  // 550 km circular orbit period is ~95.6 minutes.
  EXPECT_NEAR(shell_.orbital_period().to_seconds(), 5736.0, 30.0);
}

TEST_F(Shell1Test, SatellitesStayAtAltitude) {
  for (int plane = 0; plane < 72; plane += 7) {
    for (int slot = 0; slot < 22; slot += 5) {
      const Vec3 pos = shell_.position_ecef(SatIndex{plane, slot}, TimePoint::epoch() + 1000_s);
      EXPECT_NEAR(pos.norm(), kEarthRadiusM + 550'000.0, 1.0);
    }
  }
}

TEST_F(Shell1Test, SatelliteMovesAlongOrbit) {
  const SatIndex sat{0, 0};
  const Vec3 p0 = shell_.position_ecef(sat, TimePoint::epoch());
  const Vec3 p1 = shell_.position_ecef(sat, TimePoint::epoch() + 60_s);
  // Orbital speed at 550 km is ~7.6 km/s; the ECEF-frame chord over 60 s
  // is ~440 km (Earth rotation subtracts a little from the inertial 455 km).
  EXPECT_NEAR((p1 - p0).norm(), 440'000.0, 20'000.0);
}

TEST_F(Shell1Test, InclinationBoundsLatitude) {
  // A 53 deg inclined orbit never exceeds |lat| ~ 53 deg -> |z| <= r*sin(53).
  const double r = kEarthRadiusM + 550'000.0;
  const double zmax = r * std::sin(deg_to_rad(53.0)) + 1.0;
  for (int slot = 0; slot < 22; ++slot) {
    for (int minute = 0; minute < 96; minute += 3) {
      const Vec3 p =
          shell_.position_ecef(SatIndex{11, slot}, TimePoint::epoch() + Duration::minutes(minute));
      EXPECT_LE(std::abs(p.z), zmax);
    }
  }
}

TEST_F(Shell1Test, BelgiumAlwaysSeesSatellites) {
  // Full Shell 1 provides continuous coverage at 50.6N with a 25 deg mask.
  for (int minute = 0; minute < 200; minute += 1) {
    const auto visible = shell_.visible_from(places::kLouvainLaNeuve,
                                             TimePoint::epoch() + Duration::minutes(minute), 25.0);
    EXPECT_GE(visible.size(), 1u) << "no coverage at minute " << minute;
    for (const auto& v : visible) {
      EXPECT_GE(v.elevation_deg, 25.0);
      // Slant range at 25 deg elevation / 550 km altitude is at most ~1123 km.
      EXPECT_LE(v.slant_range_m, 1'200'000.0);
      EXPECT_GE(v.slant_range_m, 550'000.0);
    }
  }
}

TEST_F(Shell1Test, BestVisibleHasMaxElevation) {
  const TimePoint t = TimePoint::epoch() + 77_s;
  const auto all = shell_.visible_from(places::kLouvainLaNeuve, t, 25.0);
  const auto best = shell_.best_visible(places::kLouvainLaNeuve, t, 25.0);
  ASSERT_TRUE(best.has_value());
  for (const auto& v : all) EXPECT_LE(v.elevation_deg, best->elevation_deg + 1e-12);
}

TEST_F(Shell1Test, ActivePlanesRestrictsVisibility) {
  const TimePoint t = TimePoint::epoch();
  const auto all = shell_.visible_from(places::kLouvainLaNeuve, t, 25.0, 0);
  const auto few = shell_.visible_from(places::kLouvainLaNeuve, t, 25.0, 10);
  EXPECT_LE(few.size(), all.size());
  for (const auto& v : few) EXPECT_LT(v.sat.plane, 10);
}

TEST_F(Shell1Test, VisibilityFastPathMatchesPerSatelliteReference) {
  // The fast path culls whole planes geometrically and hoists per-plane trig;
  // both must be *exactly* equivalent (EXPECT_EQ, not NEAR) to the naive
  // per-satellite loop over position_ecef + elevation_deg, or determinism
  // breaks between code paths.
  for (int minute : {0, 13, 47, 95, 143}) {
    const TimePoint t = TimePoint::epoch() + Duration::minutes(minute);
    const Vec3 g = to_ecef(places::kLouvainLaNeuve);
    std::vector<Constellation::VisibleSat> reference;
    for (int plane = 0; plane < shell_.config().num_planes; ++plane) {
      for (int slot = 0; slot < shell_.config().sats_per_plane; ++slot) {
        const SatIndex sat{plane, slot};
        const Vec3 pos = shell_.position_ecef(sat, t);
        const double el = elevation_deg(g, pos);
        if (el >= 25.0) reference.push_back({sat, el, slant_range_m(g, pos)});
      }
    }
    const auto fast = shell_.visible_from(places::kLouvainLaNeuve, t, 25.0);
    ASSERT_EQ(fast.size(), reference.size()) << "minute " << minute;
    for (std::size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].sat.plane, reference[i].sat.plane);
      EXPECT_EQ(fast[i].sat.slot, reference[i].sat.slot);
      EXPECT_EQ(fast[i].elevation_deg, reference[i].elevation_deg);
      EXPECT_EQ(fast[i].slant_range_m, reference[i].slant_range_m);
    }
  }
}

TEST_F(Shell1Test, BufferOverloadMatchesReturningOverload) {
  std::vector<Constellation::VisibleSat> buf;
  for (int minute : {0, 31, 62}) {
    const TimePoint t = TimePoint::epoch() + Duration::minutes(minute);
    const auto returned = shell_.visible_from(places::kLouvainLaNeuve, t, 25.0);
    shell_.visible_from(places::kLouvainLaNeuve, t, 25.0, 0, buf);  // reused buffer
    ASSERT_EQ(buf.size(), returned.size());
    for (std::size_t i = 0; i < buf.size(); ++i) {
      EXPECT_EQ(buf[i].sat.plane, returned[i].sat.plane);
      EXPECT_EQ(buf[i].sat.slot, returned[i].sat.slot);
      EXPECT_EQ(buf[i].elevation_deg, returned[i].elevation_deg);
      EXPECT_EQ(buf[i].slant_range_m, returned[i].slant_range_m);
    }
    EXPECT_EQ(shell_.count_visible(places::kLouvainLaNeuve, t, 25.0),
              static_cast<int>(returned.size()));
  }
}

TEST_F(Shell1Test, BestVisibleMatchesScanOfVisibleFrom) {
  // best_visible must pick the same satellite a first-wins max scan over
  // visible_from picks (ties broken by scan order), without materializing.
  for (int minute : {0, 7, 19, 53, 111}) {
    const TimePoint t = TimePoint::epoch() + Duration::minutes(minute);
    const auto all = shell_.visible_from(places::kLouvainLaNeuve, t, 25.0);
    const auto best = shell_.best_visible(places::kLouvainLaNeuve, t, 25.0);
    if (all.empty()) {
      EXPECT_FALSE(best.has_value());
      continue;
    }
    ASSERT_TRUE(best.has_value());
    const auto* expect = &all[0];
    for (const auto& v : all) {
      if (v.elevation_deg > expect->elevation_deg) expect = &v;
    }
    EXPECT_EQ(best->sat.plane, expect->sat.plane);
    EXPECT_EQ(best->sat.slot, expect->sat.slot);
    EXPECT_EQ(best->elevation_deg, expect->elevation_deg);
    EXPECT_EQ(best->slant_range_m, expect->slant_range_m);
  }
}

// ------------------------------------------------------------ Handover

class HandoverTest : public ::testing::Test {
 protected:
  HandoverTest() {
    HandoverScheduler::Config cfg;
    cfg.terminal = places::kLouvainLaNeuve;
    cfg.gateways = default_european_gateways();
    scheduler_ = std::make_unique<HandoverScheduler>(shell_, cfg, Rng{99});
  }
  Constellation shell_{Constellation::Config{}};
  std::unique_ptr<HandoverScheduler> scheduler_;
};

TEST_F(HandoverTest, PathIsStableWithinSlot) {
  const auto& p1 = scheduler_->path_at(TimePoint::epoch() + 1_s);
  const SatIndex sat = p1.sat;
  const double slant = p1.terminal_slant_m;
  const auto& p2 = scheduler_->path_at(TimePoint::epoch() + 14_s);
  EXPECT_EQ(p2.sat, sat);
  EXPECT_DOUBLE_EQ(p2.terminal_slant_m, slant);
}

TEST_F(HandoverTest, PathsChangeAcrossSlots) {
  std::set<std::pair<int, int>> sats;
  for (int slot = 0; slot < 40; ++slot) {
    const auto& p = scheduler_->path_at(TimePoint::epoch() + 15_s * static_cast<double>(slot));
    ASSERT_TRUE(p.connected);
    sats.insert({p.sat.plane, p.sat.slot});
  }
  // Randomized selection over 40 slots must use several distinct satellites.
  EXPECT_GE(sats.size(), 5u);
  EXPECT_GT(scheduler_->stats().handovers, 0u);
}

TEST_F(HandoverTest, QueryOrderDoesNotChangeChoice) {
  HandoverScheduler::Config cfg;
  cfg.terminal = places::kLouvainLaNeuve;
  cfg.gateways = default_european_gateways();
  HandoverScheduler a{shell_, cfg, Rng{7}};
  HandoverScheduler b{shell_, cfg, Rng{7}};
  const TimePoint t5 = TimePoint::epoch() + 75_s;
  const TimePoint t2 = TimePoint::epoch() + 30_s;
  // a queries 5 then 2; b queries 2 then 5 -> same paths regardless.
  const SatIndex a5 = a.path_at(t5).sat;
  const SatIndex a2 = a.path_at(t2).sat;
  const SatIndex b2 = b.path_at(t2).sat;
  const SatIndex b5 = b.path_at(t5).sat;
  EXPECT_EQ(a5, b5);
  EXPECT_EQ(a2, b2);
}

TEST_F(HandoverTest, FailedPlaneIsNeverServing) {
  scheduler_->set_plane_health(7, false);
  for (int slot = 0; slot < 60; ++slot) {
    const auto& p = scheduler_->path_at(TimePoint::epoch() + 15_s * static_cast<double>(slot));
    if (p.connected) {
      EXPECT_NE(p.sat.plane, 7);
    }
  }
}

TEST_F(HandoverTest, FailedServingSatelliteReroutesWithinTheSlot) {
  const TimePoint t = TimePoint::epoch() + 5_s;
  const SatIndex serving = scheduler_->path_at(t).sat;
  // The failure invalidates the cached slot: the very next query must avoid
  // the failed satellite instead of waiting out the 15 s slot.
  scheduler_->set_satellite_health(serving, false);
  EXPECT_FALSE(scheduler_->satellite_healthy(serving));
  const auto& rerouted = scheduler_->path_at(t);
  if (rerouted.connected) {
    EXPECT_NE(rerouted.sat, serving);
  }
}

TEST_F(HandoverTest, FailedGatewayIsNeverUsed) {
  scheduler_->set_gateway_health(0, false);
  EXPECT_FALSE(scheduler_->gateway_healthy(0));
  for (int slot = 0; slot < 60; ++slot) {
    const auto& p = scheduler_->path_at(TimePoint::epoch() + 15_s * static_cast<double>(slot));
    if (p.connected) {
      EXPECT_NE(p.gateway, 0);
    }
  }
  // Out-of-range indices are ignored, not UB.
  scheduler_->set_gateway_health(99, false);
  EXPECT_TRUE(scheduler_->gateway_healthy(99));
}

TEST_F(HandoverTest, FailRestoreCycleMatchesUntouchedScheduler) {
  HandoverScheduler::Config cfg;
  cfg.terminal = places::kLouvainLaNeuve;
  cfg.gateways = default_european_gateways();
  HandoverScheduler untouched{shell_, cfg, Rng{7}};
  HandoverScheduler cycled{shell_, cfg, Rng{7}};
  const TimePoint t = TimePoint::epoch() + 45_s;
  // Fail and restore a plane before the query: the per-slot forked RNG makes
  // the recomputed choice identical to never having failed anything.
  cycled.set_plane_health(3, false);
  (void)cycled.path_at(t);
  cycled.set_plane_health(3, true);
  EXPECT_EQ(cycled.path_at(t).sat, untouched.path_at(t).sat);
  EXPECT_EQ(cycled.path_at(t).gateway, untouched.path_at(t).gateway);
}

TEST_F(HandoverTest, InvalidateRecomputesTheSameSlotDeterministically) {
  const TimePoint t = TimePoint::epoch() + 90_s;
  const SatIndex before = scheduler_->path_at(t).sat;
  scheduler_->invalidate();
  EXPECT_EQ(scheduler_->path_at(t).sat, before);
}

TEST_F(HandoverTest, PropagationDelayInPlausibleRange) {
  for (int slot = 0; slot < 50; ++slot) {
    const auto& p = scheduler_->path_at(TimePoint::epoch() + 15_s * static_cast<double>(slot));
    ASSERT_TRUE(p.connected);
    const double ms = p.propagation_one_way().to_millis();
    // Bent pipe UT->sat->GW: between ~3.7ms (2x550km) and ~9ms (2x~1300km).
    EXPECT_GE(ms, 3.6);
    EXPECT_LE(ms, 9.5);
  }
}

// ------------------------------------------------------------ StarlinkAccess

class AccessTest : public ::testing::Test {
 protected:
  AccessTest() : net_{sim_}, access_{net_, StarlinkAccess::Config{}} {}
  sim::Simulator sim_{42};
  sim::Network net_;
  StarlinkAccess access_;
};

TEST_F(AccessTest, TopologyShape) {
  EXPECT_EQ(access_.client().addr(), sim::make_addr(192, 168, 1, 100));
  EXPECT_EQ(access_.cpe().inside().addr(), sim::kCpeNatAddr);
  EXPECT_EQ(access_.cgn().inside().addr(), sim::kCgnNatAddr);
  EXPECT_EQ(access_.public_addr(), sim::make_addr(149, 6, 50, 1));
  EXPECT_EQ(net_.node_count(), 4u);
  EXPECT_EQ(net_.link_count(), 3u);
}

TEST_F(AccessTest, CapacitiesWithinEnvelope) {
  for (int i = 0; i < 500; ++i) {
    const TimePoint t = TimePoint::epoch() + Duration::minutes(i);
    const double down = access_.downlink_capacity(t).to_mbps();
    const double up = access_.uplink_capacity(t).to_mbps();
    // Bounds follow the default load-process floor/ceiling in the config.
    EXPECT_GE(down, 450.0 * 0.07 - 1e-6);
    EXPECT_LE(down, 450.0 * 0.90 + 1e-6);
    EXPECT_GE(up, 80.0 * 0.07 - 1e-6);
    EXPECT_LE(up, 80.0 * 0.8 + 1e-6);
  }
}

TEST_F(AccessTest, EpochCapacityFactorApplies) {
  StarlinkAccess::Config cfg;
  cfg.epoch_capacity_factor = [](TimePoint) { return 0.5; };
  sim::Simulator sim2{42};
  sim::Network net2{sim2};
  StarlinkAccess halved{net2, cfg};
  const TimePoint t = TimePoint::epoch() + 10_min;
  EXPECT_NEAR(halved.downlink_capacity(t).to_mbps(), access_.downlink_capacity(t).to_mbps() / 2.0,
              1e-6);
}

TEST_F(AccessTest, PingThroughAccessHasStarlinkLikeRtt) {
  // Attach a server directly at the PoP and ping it from the client.
  sim::Host& server = net_.add_host("server", sim::make_addr(203, 0, 113, 50));
  sim::Interface& pop_if = access_.pop().add_interface(sim::make_addr(203, 0, 113, 1));
  net_.connect(pop_if, server.uplink(),
               sim::Network::symmetric(DataRate::gbps(10), Duration::from_millis(1)));
  access_.pop().routes().add_route(sim::make_addr(203, 0, 113, 0), 24, pop_if);

  std::vector<double> rtts_ms;
  for (int i = 0; i < 100; ++i) {
    sim_.schedule_at(TimePoint::epoch() + Duration::seconds(5 * i), [&, i] {
      const TimePoint sent = sim_.now();
      access_.client().bind_echo_reply(static_cast<std::uint16_t>(i), [&, sent](const sim::Packet&) {
        rtts_ms.push_back((sim_.now() - sent).to_millis());
      });
      sim::Packet ping;
      ping.dst = server.addr();
      ping.proto = sim::Protocol::kIcmp;
      ping.size_bytes = 64;
      ping.icmp = sim::IcmpHeader{sim::IcmpType::kEchoRequest, static_cast<std::uint16_t>(i), 0,
                                  nullptr};
      access_.client().send(std::move(ping));
    });
  }
  sim_.run();
  ASSERT_GE(rtts_ms.size(), 95u);  // outages may eat a couple of pings
  double sum = 0.0;
  double mn = 1e9;
  double mx = 0.0;
  for (const double r : rtts_ms) {
    sum += r;
    mn = std::min(mn, r);
    mx = std::max(mx, r);
  }
  // Starlink-like: minimum around 15-30ms, mean within 30-70ms (plus the 2ms
  // server link RTT), never sub-10ms.
  EXPECT_GT(mn, 12.0);
  EXPECT_LT(mn, 40.0);
  EXPECT_GT(sum / static_cast<double>(rtts_ms.size()), 30.0);
  EXPECT_LT(sum / static_cast<double>(rtts_ms.size()), 75.0);
  EXPECT_LT(mx, 250.0);
}

TEST_F(AccessTest, TracerouteShowsTwoNatLevels) {
  sim::Host& server = net_.add_host("server", sim::make_addr(203, 0, 113, 50));
  sim::Interface& pop_if = access_.pop().add_interface(sim::make_addr(203, 0, 113, 1));
  net_.connect(pop_if, server.uplink(),
               sim::Network::symmetric(DataRate::gbps(10), Duration::from_millis(1)));
  access_.pop().routes().add_route(sim::make_addr(203, 0, 113, 0), 24, pop_if);

  std::vector<sim::Ipv4Addr> hops;
  access_.client().add_error_listener([&](const sim::Packet& p) { hops.push_back(p.src); });
  for (std::uint8_t ttl = 1; ttl <= 3; ++ttl) {
    sim_.schedule_at(TimePoint::epoch() + Duration::seconds(ttl), [&, ttl] {
      sim::Packet probe;
      probe.dst = server.addr();
      probe.src_port = static_cast<std::uint16_t>(33434 + ttl);
      probe.dst_port = 33434;
      probe.proto = sim::Protocol::kUdp;
      probe.size_bytes = 60;
      probe.ttl = ttl;
      access_.client().send(std::move(probe));
    });
  }
  sim_.run();
  ASSERT_GE(hops.size(), 2u);
  EXPECT_EQ(hops[0], sim::kCpeNatAddr);   // 192.168.1.1
  EXPECT_EQ(hops[1], sim::kCgnNatAddr);   // 100.64.0.1
}

TEST_F(AccessTest, FifoOrderPreservedDespiteJitter) {
  sim::Host& server = net_.add_host("server", sim::make_addr(203, 0, 113, 50));
  sim::Interface& pop_if = access_.pop().add_interface(sim::make_addr(203, 0, 113, 1));
  net_.connect(pop_if, server.uplink(),
               sim::Network::symmetric(DataRate::gbps(10), Duration::from_millis(1)));
  access_.pop().routes().add_route(sim::make_addr(203, 0, 113, 0), 24, pop_if);

  std::vector<std::uint64_t> arrival_order;
  server.bind(sim::Protocol::kUdp, 9000, [&](const sim::Packet& p) {
    arrival_order.push_back(p.flow_id);
  });
  for (std::uint64_t i = 0; i < 200; ++i) {
    sim::Packet p;
    p.dst = server.addr();
    p.src_port = 40'000;
    p.dst_port = 9000;
    p.proto = sim::Protocol::kUdp;
    p.size_bytes = 1200;
    p.flow_id = i;
    access_.client().send(std::move(p));
  }
  sim_.run();
  for (std::size_t i = 1; i < arrival_order.size(); ++i) {
    EXPECT_LT(arrival_order[i - 1], arrival_order[i]);
  }
}

}  // namespace
}  // namespace slp::leo
