// packet_path_test.cpp — the differential harness pinning the packet-path
// fast paths (pooled payloads, batched/analytic links, transport scan
// skipping) to the packet-level reference implementation.
//
// Two layers:
//   * PacketPool — slab/refcount mechanics under churn, stale handles,
//     chained segments, facade-outliving references (ASan-clean by
//     construction of the CI sanitizer job);
//   * Differential — the same seeded workload run with fast-forward ON and
//     OFF must produce identical observable behaviour: identical delivery
//     tap sequences at the sim level (including fall-back boundaries:
//     competing flows, mid-epoch delay retunes, rate ramps, loss attach)
//     and byte-identical --metrics/--trace exports at the campaign level
//     across seeds and --jobs, with only the event count allowed to differ.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "measure/campaign.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "phy/gilbert_elliott.hpp"
#include "runner/sweep.hpp"
#include "scenario/scenario.hpp"
#include "sim/network.hpp"
#include "sim/packet_pool.hpp"
#include "tcp/tcp.hpp"
#include "quic/quic.hpp"

namespace slp {
namespace {

using namespace slp::literals;
using sim::make_addr;
using sim::PacketPool;
using sim::PayloadRef;

// ================================================================ PacketPool

TEST(PacketPool, MakeReadBackAndRelease) {
  PacketPool pool;
  struct Blob {
    int a;
    double b;
  };
  PayloadRef ref = pool.make<Blob>(Blob{41, 2.5});
  ASSERT_TRUE(static_cast<bool>(ref));
  EXPECT_EQ(ref.as<Blob>()->a, 41);
  EXPECT_EQ(ref.as<Blob>()->b, 2.5);
  EXPECT_EQ(pool.live(), 1u);
  ref.reset();
  EXPECT_FALSE(static_cast<bool>(ref));
  EXPECT_EQ(pool.live(), 0u);
}

TEST(PacketPool, CopyBumpsRefcountAndDestroysOnce) {
  static int destroyed = 0;
  struct Counted {
    ~Counted() { ++destroyed; }
  };
  destroyed = 0;
  PacketPool pool;
  {
    PayloadRef a = pool.make<Counted>();
    EXPECT_EQ(a.use_count(), 1u);
    PayloadRef b = a;
    EXPECT_EQ(a.use_count(), 2u);
    PayloadRef c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b));
    EXPECT_EQ(c.use_count(), 2u);
    a.reset();
    EXPECT_EQ(c.use_count(), 1u);
    EXPECT_EQ(destroyed, 0);
  }
  EXPECT_EQ(destroyed, 1);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(PacketPool, StaleHandleGenerationSafety) {
  PacketPool pool;
  PayloadRef ref = pool.make<int>(7);
  const PacketPool::Handle h = pool.handle(ref);
  EXPECT_TRUE(pool.alive(h));
  ref.reset();
  EXPECT_FALSE(pool.alive(h));  // slot freed: generation advanced
  // Free-list reuse hands the same slot back with a fresh generation; the
  // stale handle must keep reading as dead.
  PayloadRef again = pool.make<int>(8);
  const PacketPool::Handle h2 = pool.handle(again);
  EXPECT_EQ(h2.slot, h.slot);  // LIFO free list reuses the hot slot
  EXPECT_NE(h2.generation, h.generation);
  EXPECT_FALSE(pool.alive(h));
  EXPECT_TRUE(pool.alive(h2));
}

TEST(PacketPool, ChurnReusesSlotsInsteadOfGrowing) {
  PacketPool pool;
  // 100k alloc/free cycles with a small live window: the pool must settle
  // on one chunk and recycle it, not grow.
  std::vector<PayloadRef> window;
  for (int i = 0; i < 100'000; ++i) {
    window.push_back(pool.make<std::uint64_t>(static_cast<std::uint64_t>(i)));
    if (window.size() > 16) window.erase(window.begin());
  }
  EXPECT_EQ(pool.total_allocs(), 100'000u);
  EXPECT_LE(pool.peak_live(), 17u);
  EXPECT_LE(pool.slots(), PacketPool::kChunkSlots);
  window.clear();
  EXPECT_EQ(pool.live(), 0u);
}

TEST(PacketPool, GrowsAcrossChunksWithoutInvalidatingPayloads) {
  PacketPool pool;
  std::vector<PayloadRef> refs;
  const int n = 1000;  // > kChunkSlots: forces several chunks
  refs.reserve(n);
  for (int i = 0; i < n; ++i) refs.push_back(pool.make<int>(i));
  EXPECT_GT(pool.slots(), PacketPool::kChunkSlots);
  for (int i = 0; i < n; ++i) EXPECT_EQ(*refs[i].as<int>(), i);
  EXPECT_EQ(pool.peak_live(), static_cast<std::uint64_t>(n));
  refs.clear();
  EXPECT_EQ(pool.live(), 0u);
}

TEST(PacketPool, ChainedSegmentsReleaseCascades) {
  // The QUIC payload overflow chain is a PayloadRef linked list; dropping
  // the head must release every segment exactly once (ASan would flag a
  // leak or double free in the sanitizer CI job).
  struct Seg {
    PayloadRef next;
    int v = 0;
  };
  PacketPool pool;
  PayloadRef head = pool.make<Seg>();
  head.as_mutable<Seg>()->v = 0;
  PayloadRef* tail = &head;
  for (int i = 1; i < 100; ++i) {
    Seg* s = tail->as_mutable<Seg>();
    s->next = pool.make<Seg>();
    s->next.as_mutable<Seg>()->v = i;
    tail = &s->next;
  }
  EXPECT_EQ(pool.live(), 100u);
  // Walk and verify before releasing.
  int expect = 0;
  for (const PayloadRef* p = &head; static_cast<bool>(*p);
       p = &p->as<Seg>()->next) {
    EXPECT_EQ(p->as<Seg>()->v, expect++);
  }
  EXPECT_EQ(expect, 100);
  head.reset();
  EXPECT_EQ(pool.live(), 0u);
}

TEST(PacketPool, ReferencesMayOutliveThePool) {
  auto* pool = new PacketPool;
  PayloadRef ref = pool->make<int>(99);
  delete pool;  // facade gone; the slab stays until the last ref drops
  EXPECT_EQ(*ref.as<int>(), 99);
  ref.reset();  // releases the orphaned slab (leak would trip ASan)
}

TEST(PacketPool, PoolAndHeapPayloadsAreEquivalent) {
  // A pool payload must behave exactly like the shared_ptr payload it
  // replaced: shared immutable reads through copies of the packet.
  PacketPool pool;
  sim::Packet p;
  p.payload = pool.make<std::uint64_t>(0xDEADBEEFull);
  sim::Packet copy = p;  // copying a packet shares the payload
  EXPECT_EQ(*copy.payload.as<std::uint64_t>(), 0xDEADBEEFull);
  EXPECT_EQ(p.payload.use_count(), 2u);
  p = sim::Packet{};
  EXPECT_EQ(copy.payload.use_count(), 1u);
  EXPECT_EQ(*copy.payload.as<std::uint64_t>(), 0xDEADBEEFull);
}

// ====================================================== sim-level boundary
//
// Each scripted workload runs twice — simulator fast-forward ON and OFF —
// and must produce the identical per-packet delivery tap sequence (time,
// uid, size, per direction) plus identical link stats and transfer results.
// The scripts aim at the fall-back boundaries: a competing flow joining
// mid-transfer, a handover-style delay retune landing mid-epoch, a
// rain-style rate ramp, and a loss model attaching to a fast direction.

struct TapSeq {
  std::vector<std::tuple<TimePoint, std::uint64_t, std::uint32_t>> ab, ba;
  sim::Link::DirStats sab, sba;
  std::uint64_t acked = 0;
  TimePoint end;

  static void record(std::vector<std::tuple<TimePoint, std::uint64_t, std::uint32_t>>& to,
                     const sim::Simulator& simulator, const sim::Packet& pkt) {
    to.emplace_back(simulator.now(), pkt.uid, pkt.size_bytes);
  }
};

void expect_identical(const TapSeq& fast, const TapSeq& ref) {
  EXPECT_EQ(fast.ab, ref.ab);
  EXPECT_EQ(fast.ba, ref.ba);
  EXPECT_EQ(fast.acked, ref.acked);
  EXPECT_EQ(fast.end == ref.end, true);
  auto same = [](const sim::Link::DirStats& x, const sim::Link::DirStats& y) {
    EXPECT_EQ(x.enqueued_packets, y.enqueued_packets);
    EXPECT_EQ(x.tx_packets, y.tx_packets);
    EXPECT_EQ(x.tx_bytes, y.tx_bytes);
    EXPECT_EQ(x.delivered_packets, y.delivered_packets);
    EXPECT_EQ(x.dropped_overflow, y.dropped_overflow);
    EXPECT_EQ(x.dropped_medium, y.dropped_medium);
    EXPECT_EQ(x.max_queue_bytes, y.max_queue_bytes);
  };
  same(fast.sab, ref.sab);
  same(fast.sba, ref.sba);
}

/// Shared scaffold: two hosts, one 20 Mbps / 10 ms link, a TCP bulk
/// transfer, and a per-test mutation script applied to the link.
template <typename Script>
TapSeq run_tcp_script(bool fast_forward, std::uint64_t bulk_bytes, Script&& script) {
  sim::Simulator simulator{404};
  simulator.set_fast_forward(fast_forward);
  sim::Network net{simulator};
  sim::Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
  sim::Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
  sim::Link& link = net.connect(
      a.uplink(), b.uplink(),
      sim::Network::symmetric(DataRate::mbps(20), 10_ms, 256 * 1024));

  TapSeq out;
  link.set_delivery_tap(0, [&](const sim::Packet& p) { TapSeq::record(out.ab, simulator, p); });
  link.set_delivery_tap(1, [&](const sim::Packet& p) { TapSeq::record(out.ba, simulator, p); });

  tcp::TcpStack sa{a};
  tcp::TcpStack sb{b};
  sb.listen(80, [](tcp::TcpConnection& c) { c.on_data = [](std::uint64_t) {}; });
  tcp::TcpConnection& conn = sa.connect(b.addr(), 80);
  conn.on_established = [&conn, bulk_bytes] { conn.send(bulk_bytes); };

  script(simulator, net, link, a, b, sa, sb);

  simulator.run_until(TimePoint::epoch() + Duration::minutes(5));
  simulator.run();
  out.sab = link.stats_a_to_b();
  out.sba = link.stats_b_to_a();
  out.acked = conn.stats().bytes_acked;
  out.end = simulator.now();
  return out;
}

TEST(Differential, CompetingFlowJoinsMidTransfer) {
  // The second flow shares the bottleneck from t=1s: the fast path must
  // model the shared serializer exactly (the first flow's epochs are no
  // longer alone on the segment).
  auto script = [](sim::Simulator& simulator, sim::Network&, sim::Link&, sim::Host&,
                   sim::Host& b, tcp::TcpStack& sa, tcp::TcpStack& sb) {
    sb.listen(81, [](tcp::TcpConnection& c) { c.on_data = [](std::uint64_t) {}; });
    simulator.schedule_in(1_s, [&sa, &b] {
      tcp::TcpConnection& second = sa.connect(b.addr(), 81);
      second.on_established = [&second] { second.send(1'000'000); };
    });
  };
  expect_identical(run_tcp_script(true, 4'000'000, script),
                   run_tcp_script(false, 4'000'000, script));
}

TEST(Differential, HandoverDelayRetuneLandsMidEpoch) {
  // A handover-slot style one-way-delay step while the transfer is in full
  // flight: the analytic direction must materialize mid-serialization and
  // re-enter the fast path after the drain, with no observable difference.
  auto script = [](sim::Simulator& simulator, sim::Network&, sim::Link& link, sim::Host&,
                   sim::Host&, tcp::TcpStack&, tcp::TcpStack&) {
    simulator.schedule_in(Duration::millis(700), [&link] {
      link.set_delay(0, 25_ms);
      link.set_delay(1, 25_ms);
    });
    simulator.schedule_in(Duration::millis(1500), [&link] {
      link.set_delay(0, 10_ms);
      link.set_delay(1, 10_ms);
    });
  };
  expect_identical(run_tcp_script(true, 4'000'000, script),
                   run_tcp_script(false, 4'000'000, script));
}

TEST(Differential, RainRampRateChangesFire) {
  // A scenario-style rain fade: capacity halves, halves again, recovers.
  auto script = [](sim::Simulator& simulator, sim::Network&, sim::Link& link, sim::Host&,
                   sim::Host&, tcp::TcpStack&, tcp::TcpStack&) {
    simulator.schedule_in(Duration::millis(500), [&link] { link.set_rate(0, DataRate::mbps(10)); });
    simulator.schedule_in(1_s, [&link] { link.set_rate(0, DataRate::mbps(5)); });
    simulator.schedule_in(2_s, [&link] { link.set_rate(0, DataRate::mbps(20)); });
  };
  expect_identical(run_tcp_script(true, 4'000'000, script),
                   run_tcp_script(false, 4'000'000, script));
}

TEST(Differential, LossModelAttachesMidTransfer) {
  // Attaching a loss model disqualifies the fast path outright; in-flight
  // analytic packets must re-enter the event path and face the same draws.
  static phy::GilbertElliott::Config ge_config;
  ge_config.mean_good = 1_s;
  ge_config.mean_bad = 100_ms;
  ge_config.loss_bad = 0.5;
  auto script = [](sim::Simulator& simulator, sim::Network&, sim::Link& link, sim::Host&,
                   sim::Host&, tcp::TcpStack&, tcp::TcpStack&) {
    static std::unique_ptr<phy::GilbertElliott> ge;
    ge = std::make_unique<phy::GilbertElliott>(ge_config, Rng{1212});
    simulator.schedule_in(Duration::millis(800), [&link] { link.set_loss(0, ge.get()); });
  };
  expect_identical(run_tcp_script(true, 2'000'000, script),
                   run_tcp_script(false, 2'000'000, script));
}

TEST(Differential, FastPathEngagesAndFallsBack) {
  sim::Simulator simulator{7};
  sim::Network net{simulator};
  sim::Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
  sim::Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
  sim::Link& link = net.connect(a.uplink(), b.uplink(),
                                sim::Network::symmetric(DataRate::mbps(10), 5_ms));
  EXPECT_TRUE(link.fast_path_active(0));  // static + lossless: analytic
  phy::GilbertElliott ge{{}, Rng{3}};
  link.set_loss(0, &ge);
  EXPECT_FALSE(link.fast_path_active(0));  // loss model: event path
  link.set_loss(0, nullptr);
  EXPECT_TRUE(link.fast_path_active(0));  // idle again: analytic resumes
  // Named (traced) links never take the fast path: they carry sampler
  // probes that read the live queue depth.
  sim::Link::Config traced = sim::Network::symmetric(DataRate::mbps(10), 5_ms);
  traced.name = "probed";
  sim::Host& c = net.add_host("c", make_addr(10, 0, 0, 3));
  sim::Host& d = net.add_host("d", make_addr(10, 0, 0, 4));
  sim::Link& named = net.connect(c.uplink(), d.uplink(), std::move(traced));
  EXPECT_FALSE(named.fast_path_active(0));
}

TEST(Differential, TransportFastForwardKnobsAreInvisible) {
  // TCP/QUIC scan-skipping (RACK floor, loss-timer arming) must not change
  // a single wire event. Exercised directly through the transport configs
  // over a lossy path so the skipped scans actually have work to skip.
  auto run_tcp = [](bool ff) {
    sim::Simulator simulator{88};
    sim::Network net{simulator};
    sim::Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
    sim::Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
    sim::Link& link = net.connect(a.uplink(), b.uplink(),
                                  sim::Network::symmetric(DataRate::mbps(30), 20_ms));
    phy::GilbertElliott ge{{.mean_good = 500_ms, .mean_bad = 40_ms, .loss_bad = 0.6}, Rng{5}};
    link.set_loss(0, &ge);
    tcp::TcpStack sa{a};
    tcp::TcpStack sb{b};
    sb.listen(80, [](tcp::TcpConnection& c) { c.on_data = [](std::uint64_t) {}; });
    tcp::TcpConfig config;
    config.fast_forward = ff;
    tcp::TcpConnection& conn = sa.connect(b.addr(), 80, config);
    conn.on_established = [&conn] { conn.send(3'000'000); };
    simulator.run_until(TimePoint::epoch() + Duration::minutes(5));
    return std::tuple{conn.stats().bytes_acked, conn.stats().segments_sent,
                      conn.stats().retransmissions, conn.stats().fast_recoveries,
                      simulator.now()};
  };
  EXPECT_EQ(run_tcp(true), run_tcp(false));

  auto run_quic = [](bool ff) {
    sim::Simulator simulator{89};
    sim::Network net{simulator};
    sim::Host& a = net.add_host("a", make_addr(10, 0, 0, 1));
    sim::Host& b = net.add_host("b", make_addr(10, 0, 0, 2));
    sim::Link& link = net.connect(a.uplink(), b.uplink(),
                                  sim::Network::symmetric(DataRate::mbps(30), 20_ms));
    phy::GilbertElliott ge{{.mean_good = 500_ms, .mean_bad = 40_ms, .loss_bad = 0.6}, Rng{6}};
    link.set_loss(0, &ge);
    quic::QuicStack ca{a};
    quic::QuicStack cb{b};
    quic::QuicConfig config;
    config.fast_forward = ff;
    std::uint64_t got = 0;
    cb.listen(443, [&](quic::QuicConnection& c) {
      c.on_stream_data = [&](std::uint64_t n) { got += n; };
    }, config);
    quic::QuicConnection& conn = ca.connect(b.addr(), 443, config);
    conn.on_established = [&conn] { conn.send_stream(3'000'000); };
    simulator.run_until(TimePoint::epoch() + Duration::minutes(5));
    return std::tuple{got, conn.stats().packets_sent, conn.stats().packets_lost,
                      conn.stats().largest_pn_sent, simulator.now()};
  };
  EXPECT_EQ(run_quic(true), run_quic(false));
}

// =================================================== campaign-level exports
//
// The acceptance bar from the issue: fast-forward ON and OFF produce
// byte-identical --metrics/--trace exports for fig2/fig5-style runs across
// seeds and --jobs. Only the event-queue counter may (and must) differ.

std::string strip_event_count(const std::string& json) {
  std::istringstream in{json};
  std::string line, out;
  while (std::getline(in, line)) {
    if (line.find("sim.events_processed") != std::string::npos) continue;
    // Fast-path introspection metrics exist precisely to differ between the
    // two modes (materialization counter, per-direction active gauges).
    if (line.find("sim.ff.") != std::string::npos) continue;
    if (line.find("fast_path_active") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

std::uint64_t event_count(const std::string& json) {
  const auto pos = json.find("sim.events_processed");
  if (pos == std::string::npos) return 0;
  const auto colon = json.find(':', pos);
  return std::strtoull(json.c_str() + colon + 1, nullptr, 10);
}

obs::Options full_obs() {
  obs::Options opts;
  opts.metrics = true;
  opts.trace = true;
  opts.sample_interval = Duration::minutes(30);
  return opts;
}

template <typename Campaign>
void expect_campaign_identity(typename Campaign::Config config) {
  for (int seeds : {1, 2}) {
    for (int jobs : {1, 2}) {
      config.obs = full_obs();
      config.fast_forward = true;
      const auto on = runner::run_merged<Campaign>({seeds, jobs}, config);
      config.fast_forward = false;
      const auto off = runner::run_merged<Campaign>({seeds, jobs}, config);
      const std::string m_on = obs::metrics_json(on.obs);
      const std::string m_off = obs::metrics_json(off.obs);
      EXPECT_EQ(strip_event_count(m_on), strip_event_count(m_off))
          << "metrics diverged at seeds=" << seeds << " jobs=" << jobs;
      EXPECT_EQ(obs::trace_jsonl(on.obs.events), obs::trace_jsonl(off.obs.events))
          << "trace diverged at seeds=" << seeds << " jobs=" << jobs;
      // The positive control: the fast path actually engaged.
      EXPECT_LT(event_count(m_on), event_count(m_off));
    }
  }
}

TEST(Differential, PingCampaignExportsAreByteIdentical) {
  measure::PingCampaign::Config config;
  config.duration = Duration::hours(2);
  config.cadence = Duration::minutes(10);
  expect_campaign_identity<measure::PingCampaign>(config);
}

TEST(Differential, SpeedtestCampaignExportsAreByteIdentical) {
  measure::SpeedtestCampaign::Config config;
  config.tests = 2;
  config.test_duration = 3_s;
  config.gap = 30_s;
  expect_campaign_identity<measure::SpeedtestCampaign>(config);
}

TEST(Differential, H3CampaignExportsAreByteIdentical) {
  measure::H3Campaign::Config config;
  config.transfers = 1;
  config.bytes = 2'000'000;
  expect_campaign_identity<measure::H3Campaign>(config);
}

TEST(Differential, ScenarioRainRampExportsAreByteIdentical) {
  // A scenario timeline (rain fade ramp) fires set-rate style epochs into
  // the Starlink access while pings run — the scenario-driven fall-back
  // boundary at campaign scale.
  scenario::Scenario scn;
  scn.name = "rain-ramp";
  scn.rain(TimePoint::epoch() + Duration::minutes(10),
           TimePoint::epoch() + Duration::minutes(40),
           /*attenuation_db=*/8.0, /*ramp=*/Duration::minutes(5));
  scn.validate();
  measure::PingCampaign::Config config;
  config.duration = Duration::hours(1);
  config.cadence = Duration::minutes(5);
  config.scenario = std::make_shared<const scenario::Scenario>(std::move(scn));
  expect_campaign_identity<measure::PingCampaign>(config);
}

}  // namespace
}  // namespace slp
