#include <gtest/gtest.h>

#include "measure/campaign.hpp"
#include "measure/loss.hpp"
#include "measure/testbed.hpp"

namespace slp::measure {
namespace {

using namespace slp::literals;

// ------------------------------------------------------------ LossAnalyzer

TEST(LossAnalyzer, NoGapsNoLoss) {
  LossAnalyzer analyzer;
  for (std::uint64_t pn = 0; pn < 100; ++pn) {
    analyzer.note_received(pn, TimePoint::epoch() + Duration::micros(50) * static_cast<double>(pn));
  }
  const auto report = analyzer.analyze();
  EXPECT_EQ(report.packets_received, 100u);
  EXPECT_EQ(report.packets_lost, 0u);
  EXPECT_EQ(report.loss_events, 0u);
  EXPECT_DOUBLE_EQ(report.loss_ratio, 0.0);
}

TEST(LossAnalyzer, SingleGapCountsBurstAndDuration) {
  LossAnalyzer analyzer;
  // pns 0..9, then 13..20: missing 10,11,12 -> one event, burst 3.
  for (std::uint64_t pn = 0; pn <= 9; ++pn) {
    analyzer.note_received(pn, TimePoint::epoch() + Duration::millis(pn));
  }
  for (std::uint64_t pn = 13; pn <= 20; ++pn) {
    analyzer.note_received(pn, TimePoint::epoch() + Duration::millis(pn));
  }
  const auto report = analyzer.analyze();
  EXPECT_EQ(report.packets_lost, 3u);
  EXPECT_EQ(report.loss_events, 1u);
  EXPECT_EQ(report.burst_lengths.count(3), 1u);
  ASSERT_EQ(report.event_durations_ms.size(), 1u);
  // Gap duration: arrival(13) - arrival(9) = 4ms.
  EXPECT_NEAR(report.event_durations_ms.values()[0], 4.0, 1e-9);
  EXPECT_NEAR(report.loss_ratio, 3.0 / 21.0, 1e-12);
}

TEST(LossAnalyzer, LongGapCountsAsOutage) {
  LossAnalyzer analyzer;
  analyzer.note_received(0, TimePoint::epoch());
  analyzer.note_received(200, TimePoint::epoch() + Duration::seconds(2));
  const auto report = analyzer.analyze();
  EXPECT_EQ(report.packets_lost, 199u);
  EXPECT_EQ(report.outage_events, 1u);
}

TEST(LossAnalyzer, CombineAggregatesAcrossTransfers) {
  LossAnalyzer a;
  a.note_received(0, TimePoint::epoch());
  a.note_received(2, TimePoint::epoch() + 1_ms);
  LossAnalyzer b;
  b.note_received(0, TimePoint::epoch());
  b.note_received(1, TimePoint::epoch() + 1_ms);
  const auto combined = LossAnalyzer::combine({a.analyze(), b.analyze()});
  EXPECT_EQ(combined.packets_received, 4u);
  EXPECT_EQ(combined.packets_lost, 1u);
  EXPECT_EQ(combined.loss_events, 1u);
  EXPECT_NEAR(combined.loss_ratio, 0.2, 1e-12);
}

TEST(LossAnalyzer, SeparateConnectionsDoNotCreateFalseGaps) {
  // Two attached connections each starting at pn 0 must not look like a
  // giant gap between them.
  LossAnalyzer analyzer;
  // Simulate two traces via the manual API on separate analyzers and merge.
  LossAnalyzer t1;
  LossAnalyzer t2;
  for (std::uint64_t pn = 0; pn < 50; ++pn) {
    t1.note_received(pn, TimePoint::epoch() + Duration::millis(pn));
    t2.note_received(pn, TimePoint::epoch() + Duration::millis(pn));
  }
  const auto combined = LossAnalyzer::combine({t1.analyze(), t2.analyze()});
  EXPECT_EQ(combined.packets_lost, 0u);
  (void)analyzer;
}

// ------------------------------------------------------------ Testbed

TEST(Testbed, BuildsElevenAnchorsAndAllClients) {
  Testbed bed{};
  EXPECT_EQ(bed.anchors().size(), 11u);
  int european = 0;
  int local = 0;
  for (const auto& anchor : bed.anchors()) {
    if (anchor.european) ++european;
    if (anchor.local) ++local;
  }
  EXPECT_EQ(european, 8);  // 4 BE + 2 AMS + 2 NUE
  EXPECT_EQ(local, 4);
  EXPECT_EQ(bed.client(AccessKind::kStarlink).name(), "pc-starlink");
  EXPECT_EQ(bed.client(AccessKind::kSatCom).name(), "pc-satcom");
  EXPECT_EQ(bed.client(AccessKind::kWired).name(), "pc-wired");
}

TEST(Testbed, WiredClientReachesCampusServerFast) {
  Testbed bed{};
  Duration rtt = Duration::zero();
  sim::Host& client = bed.client(AccessKind::kWired);
  client.bind_echo_reply(5, [&](const sim::Packet&) { rtt = bed.sim().now() - TimePoint::epoch(); });
  sim::Packet ping;
  ping.dst = bed.campus_server().addr();
  ping.proto = sim::Protocol::kIcmp;
  ping.size_bytes = 64;
  ping.icmp = sim::IcmpHeader{sim::IcmpType::kEchoRequest, 5, 0, nullptr};
  client.send(std::move(ping));
  bed.sim().run();
  EXPECT_GT(rtt.to_millis(), 0.0);
  EXPECT_LT(rtt.to_millis(), 3.0);  // same campus
}

TEST(Testbed, AllThreeClientsReachEveryAnchor) {
  Testbed bed{};
  int replies = 0;
  std::uint16_t id = 100;
  for (const AccessKind kind :
       {AccessKind::kStarlink, AccessKind::kSatCom, AccessKind::kWired}) {
    sim::Host& client = bed.client(kind);
    for (const auto& anchor : bed.anchors()) {
      ++id;
      client.bind_echo_reply(id, [&replies](const sim::Packet&) { ++replies; });
      sim::Packet ping;
      ping.dst = anchor.host->addr();
      ping.proto = sim::Protocol::kIcmp;
      ping.size_bytes = 64;
      ping.icmp = sim::IcmpHeader{sim::IcmpType::kEchoRequest, id, 0, nullptr};
      client.send(std::move(ping));
    }
  }
  bed.sim().run();
  EXPECT_EQ(replies, 33);
}

// ------------------------------------------------------------ Campaigns (smoke scale)

TEST(PingCampaignTest, ShortCampaignProducesStarlinkLikeRtts) {
  PingCampaign::Config config;
  config.duration = Duration::hours(2);
  config.cadence = Duration::minutes(5);
  config.epochs = false;
  const auto result = PingCampaign::run(config);
  ASSERT_EQ(result.anchors.size(), 11u);
  EXPECT_GT(result.pings_sent, 700u);
  // Local anchors: median in the tens of ms; far anchors: much higher.
  const auto& brussels = result.anchors[0];
  ASSERT_GT(brussels.rtt_ms.size(), 20u);
  EXPECT_GT(brussels.rtt_ms.median(), 25.0);
  EXPECT_LT(brussels.rtt_ms.median(), 70.0);
  const auto& singapore = result.anchors[10];
  EXPECT_GT(singapore.rtt_ms.median(), 150.0);
  // Loss is rare but the campaign survives it.
  EXPECT_LT(static_cast<double>(result.pings_lost) / result.pings_sent, 0.05);
}

TEST(MessageCampaignTest, ShortUploadSessionCollectsEverything) {
  MessageCampaign::Config config;
  config.sessions = 1;
  config.session_duration = Duration::seconds(30);
  const auto result = MessageCampaign::run(config);
  EXPECT_NEAR(result.messages_sent, 750, 10);
  EXPECT_GT(result.latency_ms.size(), 700u);
  EXPECT_GT(result.rtt_ms.size(), 1000u);
  // Message latencies sit near the path RTT's one-way plus queueing.
  EXPECT_GT(result.latency_ms.median(), 15.0);
  EXPECT_LT(result.latency_ms.median(), 120.0);
}

TEST(SpeedtestCampaignTest, WiredTestsNearGigabit) {
  SpeedtestCampaign::Config config;
  config.access = AccessKind::kWired;
  config.tests = 2;
  config.test_duration = Duration::seconds(6);
  config.gap = Duration::seconds(5);
  const auto result = SpeedtestCampaign::run(config);
  ASSERT_EQ(result.mbps.size(), 2u);
  EXPECT_GT(result.mbps.median(), 500.0);
  EXPECT_LE(result.mbps.median(), 1000.0);
}

TEST(WebCampaignTest, WiredVisitsAreFast) {
  WebCampaign::Config config;
  config.access = AccessKind::kWired;
  config.visits = 4;
  config.catalog_sites = 10;
  const auto result = WebCampaign::run(config);
  EXPECT_EQ(result.visits_completed, 4);
  EXPECT_EQ(result.visits_timed_out, 0);
  EXPECT_GT(result.onload_s.median(), 0.2);
  EXPECT_LT(result.onload_s.median(), 4.0);
  EXPECT_LE(result.speedindex_s.median(), result.onload_s.median() + 1e-9);
  EXPECT_GT(result.mean_connections, 3.0);
}

TEST(MiddleboxAuditTest, StarlinkShowsNatsNoPepNoTd) {
  MiddleboxAudit::Config config;
  config.wehe_repetitions = 2;
  const auto result = MiddleboxAudit::run(config);
  ASSERT_GE(result.traceroute.size(), 3u);
  EXPECT_EQ(result.traceroute[0].reporter, sim::kCpeNatAddr);
  EXPECT_EQ(result.traceroute[1].reporter, sim::kCgnNatAddr);
  EXPECT_TRUE(result.tracebox.nat_detected);
  EXPECT_FALSE(result.tracebox.pep_detected);
  EXPECT_FALSE(result.wehe.differentiation_detected);
}

}  // namespace
}  // namespace slp::measure
