// video_streaming — can Starlink sustain 4K streams?
//
// §3.3 of the paper: "Netflix's 4K videos require a download bandwidth of
// 15 Mbit/s, while Disney+ recommends 25 Mbit/s." This example emulates an
// ABR video player (segment downloads over HTTP/3, a client buffer, quality
// switching) over Starlink and counts rebuffering events at each bitrate
// ladder rung.
//
//   $ ./build/examples/video_streaming [--seed=N] [--minutes=3]
#include <cstdio>
#include <deque>

#include "measure/testbed.hpp"
#include "quic/quic.hpp"
#include "util/flags.hpp"

namespace {

using namespace slp;
using namespace slp::literals;

/// A minimal DASH-like player: 4-second segments fetched sequentially over
/// one QUIC connection; playback drains the buffer in real time.
class VideoPlayer {
 public:
  struct Config {
    double bitrate_mbps = 15.0;           ///< the ladder rung under test
    Duration segment = Duration::seconds(4);
    Duration duration = Duration::minutes(3);
    Duration startup_buffer = Duration::seconds(8);
  };

  struct Result {
    int segments_played = 0;
    int rebuffer_events = 0;
    Duration stalled = Duration::zero();
    Duration startup_delay = Duration::zero();
  };

  VideoPlayer(measure::Testbed& bed, quic::QuicConnection& server_conn, Config config)
      : bed_{&bed}, server_conn_{&server_conn}, config_{config}, play_timer_{bed.sim()} {}

  void start() {
    start_time_ = bed_->sim().now();
    server_conn_->on_message = [this](std::uint64_t, std::uint64_t, TimePoint) {};
    request_next();
  }

  std::function<void(const Result&)> on_complete;

  void on_segment_arrived() {
    buffered_ += config_.segment;
    if (!playing_ && buffered_ >= config_.startup_buffer) {
      playing_ = true;
      if (result_.startup_delay.is_zero()) {
        result_.startup_delay = bed_->sim().now() - start_time_;
      }
      if (stall_started_.ns() != 0) {
        result_.stalled += bed_->sim().now() - stall_started_;
        stall_started_ = TimePoint{};
      }
      play_tick();
    }
    request_next();
  }

 private:
  void request_next() {
    if (bed_->sim().now() - start_time_ >= config_.duration) return;
    // Fetch ahead at most 4 segments.
    if (buffered_ >= config_.segment * 4.0) return;
    if (fetching_) return;
    fetching_ = true;
    const auto bytes = static_cast<std::uint64_t>(
        config_.bitrate_mbps * 1e6 / 8.0 * config_.segment.to_seconds());
    // The "server" pushes the segment as one message; completion = arrival.
    const std::uint64_t id = server_conn_->send_message(bytes);
    (void)id;
  }

  void play_tick() {
    play_timer_.arm(config_.segment, [this] {
      buffered_ -= config_.segment;
      result_.segments_played++;
      if (bed_->sim().now() - start_time_ >= config_.duration) {
        finish();
        return;
      }
      if (buffered_ < config_.segment) {
        // Buffer empty: rebuffer.
        playing_ = false;
        result_.rebuffer_events++;
        stall_started_ = bed_->sim().now();
        request_next();
        return;
      }
      play_tick();
      request_next();
    });
  }

  void finish() {
    if (on_complete) on_complete(result_);
  }

 public:
  // Wired by the owner: a segment message completed delivery.
  void notify_delivery() {
    fetching_ = false;
    on_segment_arrived();
  }

 private:
  measure::Testbed* bed_;
  quic::QuicConnection* server_conn_;
  Config config_;
  sim::Timer play_timer_;
  TimePoint start_time_;
  Duration buffered_ = Duration::zero();
  bool playing_ = false;
  bool fetching_ = false;
  TimePoint stall_started_;
  Result result_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace slp;
  const Flags flags = Flags::parse(argc, argv);
  const auto minutes = flags.get_int("minutes", 3);

  std::printf("ABR video over Starlink (paper §3.3: 4K needs 15-25 Mbit/s)\n\n");
  for (const double mbps : {15.0, 25.0, 60.0, 120.0}) {
    measure::TestbedConfig config;
    config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));
    config.with_satcom = false;
    measure::Testbed bed{config};

    quic::QuicStack client_stack{bed.client(measure::AccessKind::kStarlink)};
    quic::QuicStack server_stack{bed.campus_server()};
    quic::QuicConnection* server_conn = nullptr;
    server_stack.listen(443, [&](quic::QuicConnection& conn) { server_conn = &conn; });
    quic::QuicConnection& conn = client_stack.connect(bed.campus_server().addr(), 443);

    std::unique_ptr<VideoPlayer> player;
    VideoPlayer::Result result;
    bool done = false;
    conn.on_established = [&] {
      VideoPlayer::Config player_config;
      player_config.bitrate_mbps = mbps;
      player_config.duration = Duration::minutes(minutes);
      player = std::make_unique<VideoPlayer>(bed, *server_conn, player_config);
      conn.on_message = [&](std::uint64_t, std::uint64_t, TimePoint) {
        player->notify_delivery();
      };
      player->on_complete = [&](const VideoPlayer::Result& r) {
        result = r;
        done = true;
      };
      player->start();
    };
    bed.sim().run_until(TimePoint::epoch() + Duration::minutes(minutes + 2));
    if (!done) {
      std::printf("  %5.0f Mbit/s: stream never reached steady playback (unsustainable)\n",
                  mbps);
      continue;
    }
    std::printf("  %5.0f Mbit/s: %3d segments, startup %4.1f s, rebuffers %d, "
                "stalled %.1f s %s\n",
                mbps, result.segments_played, result.startup_delay.to_seconds(),
                result.rebuffer_events, result.stalled.to_seconds(),
                result.rebuffer_events == 0 ? "-> smooth" : "-> degraded");
  }
  std::printf("\nExpected: 15-60 Mbit/s rungs stream cleanly on Starlink; rungs "
              "near/above the downlink share rebuffer.\n");
  return 0;
}
