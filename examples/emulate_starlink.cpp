// emulate_starlink — use the ERRANT-style profile to emulate a Starlink
// link for your own experiments (the paper's released artifact, §1/§4).
//
// Shows both halves of the artifact:
//   1. exporting netem command lines for a real testbed, and
//   2. applying a sampled profile to a simulated link and validating the
//      emulation with a ping + a bulk transfer.
//
//   $ ./build/examples/emulate_starlink [--seed=N]
#include <cstdio>

#include "apps/ping.hpp"
#include "emu/errant.hpp"
#include "sim/network.hpp"
#include "tcp/tcp.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace slp;
  using sim::make_addr;
  const Flags flags = Flags::parse(argc, argv);
  Rng rng{static_cast<std::uint64_t>(flags.get_int("seed", 5))};

  // A hand-specified Starlink profile at the paper's headline numbers (the
  // errant_profiles bench shows how to *fit* one from campaign data).
  const emu::ErrantProfile starlink{
      "starlink",
      {std::log(178.0), 0.30},  // download Mbit/s
      {std::log(17.0), 0.30},   // upload Mbit/s
      {std::log(50.0), 0.20},   // RTT ms
      0.18,                     // jitter fraction
      0.004};                   // loss

  std::printf("Profile: %s\n\n", starlink.describe().c_str());
  std::printf("netem command lines for a physical testbed:\n");
  for (const auto& cmd : starlink.median().netem_commands("eth0", "ifb0")) {
    std::printf("  %s\n", cmd.c_str());
  }

  // Apply one sampled instance to a simulated link and validate it.
  const emu::NetemParams params = starlink.sample(rng);
  std::printf("\nsampled instance: down %.0f Mbit/s, up %.1f Mbit/s, RTT %.1f ms, "
              "loss %.2f%%\n",
              params.rate_down.to_mbps(), params.rate_up.to_mbps(),
              params.delay_one_way.to_millis() * 2.0, params.loss_ratio * 100.0);

  sim::Simulator simulator{rng.next()};
  sim::Network net{simulator};
  sim::Host& client = net.add_host("client", make_addr(10, 0, 0, 2));
  sim::Host& server = net.add_host("server", make_addr(10, 0, 0, 1));
  sim::Link& link = net.connect(client.uplink(), server.uplink(),
                                sim::Network::symmetric(DataRate::gbps(1), Duration::millis(1),
                                                        2 * 1024 * 1024));
  std::vector<std::unique_ptr<sim::LossModel>> loss_models;
  emu::apply(params, link, loss_models, rng.fork("apply"));
  // Note on loss: netem's i.i.d. loss is brutal to a single TCP flow (the
  // classic Mathis 1/sqrt(p) collapse) — that is faithful emulator behavior,
  // but for the throughput validation below we disable it to check that the
  // configured *rate* is realized.
  link.set_loss(0, nullptr);
  link.set_loss(1, nullptr);

  // Validation 1: ping through the emulated link.
  apps::PingApp::Config ping_config;
  ping_config.target = server.addr();
  ping_config.count = 5;
  apps::PingApp ping{client, ping_config};
  ping.on_complete = [&](const std::vector<apps::PingApp::Probe>& probes) {
    std::printf("\nemulated pings:");
    for (const auto& probe : probes) {
      if (probe.lost) {
        std::printf(" lost");
      } else {
        std::printf(" %.1fms", probe.rtt.to_millis());
      }
    }
    std::printf("  (target RTT %.1f ms)\n", params.delay_one_way.to_millis() * 2.0);
  };
  ping.start();
  simulator.run();

  // Validation 2: a 20 MB TCP download through the emulated link.
  tcp::TcpStack client_stack{client};
  tcp::TcpStack server_stack{server};
  server_stack.listen(80, [](tcp::TcpConnection& c) {
    c.on_data = [&c](std::uint64_t) { c.send(20'000'000); };
  });
  std::uint64_t got = 0;
  TimePoint first_byte;
  TimePoint last_byte;
  tcp::TcpConnection& conn = client_stack.connect(server.addr(), 80);
  conn.on_data = [&](std::uint64_t n) {
    if (got == 0) first_byte = simulator.now();
    got += n;
    last_byte = simulator.now();
  };
  conn.on_established = [&conn] { conn.send(100); };
  simulator.run_until(simulator.now() + Duration::minutes(3));
  if (got > 0) {
    std::printf("emulated 20 MB download: %.1f Mbit/s (link set to %.0f)\n",
                got * 8.0 / (last_byte - first_byte).to_seconds() / 1e6,
                params.rate_down.to_mbps());
  }
  std::printf("\nUse emu::ErrantProfile::fit() on campaign output to regenerate "
              "the data-driven model (see bench/errant_profiles).\n");
  return 0;
}
