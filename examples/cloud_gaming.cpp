// cloud_gaming — is Starlink good enough for GeForce Now?
//
// §3.1 of the paper: "GeForce Now, one of the leading platforms, mandates a
// latency below 80ms". This example runs a game-streaming-like workload
// (60 Hz video down at 15 Mbit/s as QUIC messages, tiny input messages up)
// over Starlink and over GEO SatCom, and reports frame latency and the
// fraction of frames meeting the 80 ms budget.
//
//   $ ./build/examples/cloud_gaming [--seed=N] [--seconds=30]
#include <cstdio>

#include "apps/messages.hpp"
#include "measure/testbed.hpp"
#include "stats/ecdf.hpp"
#include "stats/quantiles.hpp"
#include "util/flags.hpp"

namespace {

using namespace slp;

struct GameResult {
  stats::Samples frame_latency_ms;
  stats::Samples input_latency_ms;
};

GameResult play(measure::Testbed& bed, measure::AccessKind kind, Duration duration) {
  GameResult result;
  quic::QuicStack client_stack{bed.client(kind)};
  quic::QuicStack server_stack{bed.campus_server()};

  quic::QuicConnection* server_conn = nullptr;
  server_stack.listen(443, [&](quic::QuicConnection& conn) {
    server_conn = &conn;
    // Input messages arriving at the game server.
    conn.on_message = [&](std::uint64_t, std::uint64_t, TimePoint queued_at) {
      result.input_latency_ms.add((bed.sim().now() - queued_at).to_millis());
    };
  });

  quic::QuicConnection& conn = client_stack.connect(bed.campus_server().addr(), 443);
  conn.on_message = [&](std::uint64_t, std::uint64_t, TimePoint queued_at) {
    result.frame_latency_ms.add((bed.sim().now() - queued_at).to_millis());
  };

  std::unique_ptr<apps::MessageSender> video;
  std::unique_ptr<apps::MessageSender> input;
  conn.on_established = [&] {
    // 60 fps video: ~31 kB per frame = 15 Mbit/s.
    apps::MessageSender::Config video_config;
    video_config.rate_hz = 60.0;
    video_config.min_bytes = 24'000;
    video_config.max_bytes = 38'000;
    video_config.duration = duration;
    video = std::make_unique<apps::MessageSender>(*server_conn, video_config,
                                                  bed.sim().fork_rng("video"));
    video->start();
    // 125 Hz input events, 100 bytes each.
    apps::MessageSender::Config input_config;
    input_config.rate_hz = 125.0;
    input_config.min_bytes = 80;
    input_config.max_bytes = 120;
    input_config.duration = duration;
    input = std::make_unique<apps::MessageSender>(conn, input_config,
                                                  bed.sim().fork_rng("input"));
    input->start();
  };
  bed.sim().run();
  return result;
}

void report(const char* name, const GameResult& result) {
  if (result.frame_latency_ms.empty()) {
    std::printf("  %-8s: no frames delivered\n", name);
    return;
  }
  const auto& f = result.frame_latency_ms;
  const double within_budget =
      100.0 * stats::Ecdf{f}.eval(80.0);
  std::printf("  %-8s: frames median %5.1f ms, p95 %5.1f ms, p99 %5.1f ms | "
              "input median %4.1f ms | %5.1f%% of frames under the 80 ms budget%s\n",
              name, f.median(), f.percentile(95), f.percentile(99),
              result.input_latency_ms.median(), within_budget,
              within_budget > 95.0 ? "  -> playable" : "  -> not playable");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slp;
  const Flags flags = Flags::parse(argc, argv);
  const auto seconds = flags.get_int("seconds", 30);

  std::printf("Cloud gaming check (GeForce Now budget: 80 ms, paper §3.1)\n\n");
  {
    measure::TestbedConfig config;
    config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
    config.with_satcom = false;
    measure::Testbed bed{config};
    report("starlink",
           play(bed, measure::AccessKind::kStarlink, Duration::seconds(seconds)));
  }
  {
    measure::TestbedConfig config;
    config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
    measure::Testbed bed{config};
    report("satcom", play(bed, measure::AccessKind::kSatCom, Duration::seconds(seconds)));
  }
  std::printf("\nThe paper's observation: Starlink's latency is compatible with "
              "cloud gaming; geostationary satellite access is not.\n");
  return 0;
}
