// fleet_cli — throughput vs. neighbourhood size across access technologies.
//
// Sweeps {fleet sizes} x {demand mixes} for the Starlink access — each cell
// runs the Ookla-style speedtest with N simulated neighbour terminals
// contending for the same ground cells (src/fleet/) — next to the geo and
// wired baselines, which have no shared-cell contention and ignore the
// fleet. Each Starlink cell also runs the pure fleet campaign to report the
// per-cell utilization distribution, and the final cell's per-cell and
// per-terminal ECDFs are rendered in full.
//
//   ./fleet_cli --sizes=1,1000,5000 --mixes=balanced,web-heavy --seeds=4
//   ./fleet_cli --grid=leo,wired --tests=2 --jobs=8 --metrics=fleet.json
//
// Deterministic: seeds derive from (row, replication) alone and results are
// folded in cell order, so any --jobs value prints the same bytes.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "fleet/campaign.hpp"
#include "measure/campaign.hpp"
#include "obs/recorder.hpp"
#include "runner/sweep.hpp"
#include "stats/ecdf.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"

namespace {

using namespace slp;

bool parse_access(const std::string& label, measure::AccessKind& out) {
  if (label == "leo" || label == "starlink") out = measure::AccessKind::kStarlink;
  else if (label == "geo" || label == "satcom") out = measure::AccessKind::kSatCom;
  else if (label == "wired") out = measure::AccessKind::kWired;
  else return false;
  return true;
}

/// Named demand mixes: fractions over {bulk, speedtest, web, idle}.
bool apply_mix(const std::string& name, fleet::DemandModel::Config& demand) {
  if (name == "balanced") return true;  // the DemandModel defaults
  if (name == "web-heavy") {
    demand.bulk.fraction = 0.05;
    demand.speedtest.fraction = 0.03;
    demand.web.fraction = 0.70;
    demand.idle.fraction = 0.22;
    return true;
  }
  if (name == "bulk-heavy") {
    demand.bulk.fraction = 0.30;
    demand.speedtest.fraction = 0.05;
    demand.web.fraction = 0.30;
    demand.idle.fraction = 0.35;
    return true;
  }
  if (name == "idle") {
    demand.bulk.fraction = 0.02;
    demand.speedtest.fraction = 0.01;
    demand.web.fraction = 0.17;
    demand.idle.fraction = 0.80;
    return true;
  }
  return false;
}

void write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const auto base_seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const int seeds = std::max<int>(1, static_cast<int>(flags.get_int("seeds", 1)));
  const int jobs = std::max<int>(0, static_cast<int>(flags.get_int("jobs", 1)));
  const int tests = std::max<int>(1, static_cast<int>(flags.get_int("tests", 3)));
  const bool download = flags.get_bool("download", true);
  const auto grid_labels = flags.get_list("grid", {"leo", "geo", "wired"});
  const auto size_list = flags.get_double_list("sizes", {1, 1000, 5000});
  const auto mix_labels = flags.get_list("mixes", {"balanced"});
  const Duration fleet_duration = flags.get_duration("duration", Duration::minutes(10));
  const std::string metrics_path = flags.get("metrics", "");
  const std::string trace_path = flags.get("trace", "");
  Logger::instance().set_level(
      parse_log_level(flags.get("log-level", "warn"), LogLevel::kWarn));
  for (const auto& key : flags.unused()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", key.c_str());
  }

  obs::Options obs_opts;
  obs_opts.metrics = !metrics_path.empty();
  obs_opts.trace = !trace_path.empty();

  std::vector<measure::AccessKind> accesses;
  for (const std::string& label : grid_labels) {
    measure::AccessKind kind{};
    if (!parse_access(label, kind)) {
      std::fprintf(stderr, "unknown access '%s' (want leo|geo|wired)\n", label.c_str());
      return 1;
    }
    accesses.push_back(kind);
  }
  for (const std::string& mix : mix_labels) {
    fleet::DemandModel::Config probe;
    if (!apply_mix(mix, probe)) {
      std::fprintf(stderr, "unknown mix '%s' (want balanced|web-heavy|bulk-heavy|idle)\n",
                   mix.c_str());
      return 1;
    }
  }

  std::printf("fleet sweep: %zu access x %zu sizes x %zu mixes, %d seeds/row, %d tests\n\n",
              accesses.size(), size_list.size(), mix_labels.size(), seeds, tests);

  const runner::SweepConfig sweep{seeds, jobs};
  stats::TextTable table{{"access", "fleet", "mix", "speedtest p50", "p95", "cell util p50",
                          "p95", "handovers"}};
  obs::Snapshot all_obs;
  fleet::FleetCampaign::Result last_leo;  // richest cell, rendered as ECDFs below
  bool have_leo = false;
  std::uint64_t row = 0;

  for (const measure::AccessKind kind : accesses) {
    const bool leo = kind == measure::AccessKind::kStarlink;
    // geo/wired have no shared-cell contention: one baseline row each.
    const std::size_t sizes = leo ? size_list.size() : 1;
    const std::size_t mixes = leo ? mix_labels.size() : 1;
    for (std::size_t si = 0; si < sizes; ++si) {
      for (std::size_t mi = 0; mi < mixes; ++mi) {
        ++row;
        measure::SpeedtestCampaign::Config config;
        config.seed = runner::cell_seed(base_seed, row);
        config.access = kind;
        config.tests = tests;
        config.download = download;
        config.obs = obs_opts;
        if (leo) {
          config.fleet.size = static_cast<int>(size_list[si]);
          apply_mix(mix_labels[mi], config.fleet.demand);
        }
        const auto speed = runner::run_merged<measure::SpeedtestCampaign>(sweep, config);
        obs::merge(all_obs, speed.obs);

        std::string util_p50 = "-";
        std::string util_p95 = "-";
        std::string handovers = "-";
        if (leo && config.fleet.size > 1) {
          fleet::FleetCampaign::Config fc;
          fc.seed = config.seed;
          fc.fleet = config.fleet;
          fc.duration = fleet_duration;
          fc.obs = obs_opts;
          const auto contention = runner::run_merged<fleet::FleetCampaign>(sweep, fc);
          obs::merge(all_obs, contention.obs);
          util_p50 = stats::TextTable::num(contention.cell_util_down.pooled_quantile(0.50), 3);
          util_p95 = stats::TextTable::num(contention.cell_util_down.pooled_quantile(0.95), 3);
          handovers = std::to_string(contention.handovers);
          last_leo = contention;
          have_leo = true;
        }
        using stats::TextTable;
        table.add_row({std::string{measure::to_string(kind)},
                       leo ? std::to_string(config.fleet.size) : "-",
                       leo ? mix_labels[mi] : "-",
                       speed.mbps.empty() ? "-" : TextTable::num(speed.mbps.median(), 1),
                       speed.mbps.empty() ? "-" : TextTable::num(speed.mbps.percentile(95), 1),
                       util_p50, util_p95, handovers});
      }
    }
  }
  std::printf("%s", table.str().c_str());

  if (have_leo) {
    const double probs[] = {0.10, 0.25, 0.50, 0.75, 0.90, 0.99};
    std::printf("\nper-cell mean downlink utilization ECDF (last Starlink row):\n%s",
                stats::render_cdf_rows(stats::Ecdf{last_leo.cell_util_down.means()}, probs, "")
                    .c_str());
    std::printf("\nper-terminal mean downlink allocation ECDF (last Starlink row):\n%s",
                stats::render_cdf_rows(stats::Ecdf{last_leo.terminal_down_mbps.means()}, probs,
                                       " Mbit/s")
                    .c_str());
  }

  if (!metrics_path.empty()) {
    write_file(metrics_path, obs::metrics_json(all_obs));
    std::printf("\nmetrics -> %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    const bool jsonl =
        trace_path.size() >= 6 && trace_path.compare(trace_path.size() - 6, 6, ".jsonl") == 0;
    write_file(trace_path,
               jsonl ? obs::trace_jsonl(all_obs.events) : obs::trace_json(all_obs.events));
    std::printf("trace   -> %s\n", trace_path.c_str());
  }
  return 0;
}
