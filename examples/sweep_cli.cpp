// sweep_cli — parallel multi-seed campaign sweeps over a scenario grid.
//
// Runs the Ookla-style speedtest campaign for every cell of
//   {access technologies} x {load levels (parallel TCP connections)}
// with N independent seed replications per cell, all scheduled on one
// work-stealing pool, and prints one aggregate throughput table.
//
//   ./sweep_cli --seeds=8 --jobs=8
//   ./sweep_cli --grid=leo,wired --loads=1,8 --tests=6 --seeds=4
//   ./sweep_cli --seeds=4 --jobs=4 --metrics=sweep.json --trace=sweep.trace.json
//   ./sweep_cli --scenario=examples/scenarios/rain_front.scn --seeds=4
//
// The merged table is bit-identical for any --jobs value: cells derive their
// seeds from (cell id, replication id) alone and results are folded in cell
// order, never completion order (see src/runner/sweep.hpp).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "measure/campaign.hpp"
#include "obs/recorder.hpp"
#include "scenario/scenario.hpp"
#include "runner/pool.hpp"
#include "runner/sweep.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"

namespace {

using namespace slp;

struct GridCell {
  std::string name;          // grid label: leo | geo | wired
  measure::AccessKind kind;
};

bool parse_access(const std::string& label, measure::AccessKind& out) {
  if (label == "leo" || label == "starlink") out = measure::AccessKind::kStarlink;
  else if (label == "geo" || label == "satcom") out = measure::AccessKind::kSatCom;
  else if (label == "wired") out = measure::AccessKind::kWired;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const auto base_seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const int seeds = std::max<int>(1, static_cast<int>(flags.get_int("seeds", 4)));
  const int jobs = std::max<int>(0, static_cast<int>(flags.get_int("jobs", 0)));
  const int tests = std::max<int>(1, static_cast<int>(flags.get_int("tests", 4)));
  const bool download = flags.get_bool("download", true);
  const auto grid_labels = flags.get_list("grid", {"leo", "geo", "wired"});
  const auto loads = flags.get_double_list("loads", {1, 4, 8});
  const std::string metrics_path = flags.get("metrics", "");
  const std::string trace_path = flags.get("trace", "");
  const Duration sample_interval = flags.get_duration("sample-interval", Duration::zero());
  const std::string scenario_path = flags.get("scenario", "");
  const Duration scenario_offset = flags.get_duration("scenario-offset", Duration::zero());
  Logger::instance().set_level(
      parse_log_level(flags.get("log-level", "warn"), LogLevel::kWarn));
  obs::Options obs_opts;
  obs_opts.metrics = !metrics_path.empty();
  obs_opts.trace = !trace_path.empty();
  if (sample_interval > Duration::zero()) obs_opts.sample_interval = sample_interval;
  std::shared_ptr<const scenario::Scenario> timeline;
  if (!scenario_path.empty()) {
    try {
      auto scn = scenario::Scenario::load(scenario_path);
      if (scenario_offset != Duration::zero()) scn.shift(scenario_offset);
      timeline = std::make_shared<const scenario::Scenario>(std::move(scn));
      std::printf("scenario: %s (%zu events)\n", timeline->name.c_str(),
                  timeline->events.size());
    } catch (const scenario::ScenarioError& e) {
      std::fprintf(stderr, "error: --scenario=%s: %s\n", scenario_path.c_str(), e.what());
      return 2;
    }
  }
  for (const auto& key : flags.unused()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", key.c_str());
  }

  std::vector<GridCell> grid_cells;
  for (const std::string& label : grid_labels) {
    GridCell cell{label, measure::AccessKind::kStarlink};
    if (!parse_access(label, cell.kind)) {
      std::fprintf(stderr, "unknown access '%s' (want leo|geo|wired)\n", label.c_str());
      return 1;
    }
    grid_cells.push_back(std::move(cell));
  }

  std::printf("sweep: %zu access x %zu load levels, %d seeds/cell, %s direction\n",
              grid_cells.size(), loads.size(), seeds, download ? "download" : "upload");

  // One task per (access, load, seed) cell, all on one pool. Each task
  // fills its own pre-assigned slot; the merge below walks slots in order.
  const std::size_t grid = grid_cells.size() * loads.size();
  std::vector<measure::SpeedtestCampaign::Result> cells(grid * static_cast<std::size_t>(seeds));
  runner::Pool pool{jobs};
  for (std::size_t g = 0; g < grid; ++g) {
    const GridCell& cell = grid_cells[g / loads.size()];
    const int connections = static_cast<int>(loads[g % loads.size()]);
    for (int s = 0; s < seeds; ++s) {
      const std::size_t slot = g * static_cast<std::size_t>(seeds) + static_cast<std::size_t>(s);
      // Two-level derivation: grid index picks a per-cell base stream,
      // replication index forks within it. g+1 so grid cell 0 is mixed too.
      const std::uint64_t seed = runner::cell_seed(runner::cell_seed(base_seed, g + 1),
                                                   static_cast<std::uint64_t>(s));
      pool.submit([&cells, slot, seed, kind = cell.kind, connections, tests, download,
                   obs_opts, timeline] {
        measure::SpeedtestCampaign::Config config;
        config.seed = seed;
        config.access = kind;
        config.connections = connections;
        config.tests = tests;
        config.download = download;
        config.obs = obs_opts;
        config.scenario = timeline;
        cells[slot] = measure::SpeedtestCampaign::run(config);
      });
    }
  }
  pool.drain();

  stats::TextTable table{{"access", "connections", "tests", "p25", "median", "p75", "p95"}};
  obs::Snapshot all_obs;
  for (std::size_t g = 0; g < grid; ++g) {
    measure::SpeedtestCampaign::Result merged =
        std::move(cells[g * static_cast<std::size_t>(seeds)]);
    for (int s = 1; s < seeds; ++s) {
      merge(merged, cells[g * static_cast<std::size_t>(seeds) + static_cast<std::size_t>(s)]);
    }
    obs::merge(all_obs, merged.obs);
    using stats::TextTable;
    table.add_row({grid_cells[g / loads.size()].name,
                   TextTable::num(loads[g % loads.size()], 0),
                   std::to_string(merged.mbps.size()),
                   TextTable::num(merged.mbps.percentile(25), 1),
                   TextTable::num(merged.mbps.median(), 1),
                   TextTable::num(merged.mbps.percentile(75), 1),
                   TextTable::num(merged.mbps.percentile(95), 1)});
  }
  std::printf("%s", table.str().c_str());
  std::printf("\npool: %d workers, %llu tasks, %llu stolen, %.2fs cell time "
              "(max cell %.2fs)\n",
              pool.workers(), static_cast<unsigned long long>(pool.tasks_completed()),
              static_cast<unsigned long long>(pool.tasks_stolen()),
              pool.task_seconds_total(), pool.task_seconds_max());

  const auto write_file = [](const std::string& path, const std::string& body) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
  };
  if (!metrics_path.empty()) {
    write_file(metrics_path, obs::metrics_json(all_obs));
    std::printf("metrics -> %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    const bool jsonl =
        trace_path.size() >= 6 && trace_path.compare(trace_path.size() - 6, 6, ".jsonl") == 0;
    write_file(trace_path,
               jsonl ? obs::trace_jsonl(all_obs.events) : obs::trace_json(all_obs.events));
    std::printf("trace   -> %s\n", trace_path.c_str());
  }
  return 0;
}
