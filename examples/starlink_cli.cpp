// starlink_cli — a measurement multi-tool over the simulated testbed, in the
// spirit of the command-line tools the paper used (ping, speedtest-cli,
// traceroute, wehe) but pointed at the simulation.
//
//   starlink_cli ping       [--access=starlink|satcom|wired] [--anchor=N] [--count=N]
//   starlink_cli speedtest  [--access=...] [--upload] [--connections=N]
//   starlink_cli h3         [--upload] [--mb=N] [--qlog]
//   starlink_cli traceroute [--access=...]
//   starlink_cli wehe       [--access=...]
//   common: --seed=N
#include <cstdio>
#include <cstring>
#include <fstream>

#include "apps/h3.hpp"
#include "apps/ping.hpp"
#include "apps/speedtest.hpp"
#include "mbox/traceroute.hpp"
#include "mbox/wehe.hpp"
#include "measure/testbed.hpp"
#include "quic/qlog.hpp"
#include "util/flags.hpp"

namespace {

using namespace slp;

measure::AccessKind parse_access(const std::string& s) {
  if (s == "satcom") return measure::AccessKind::kSatCom;
  if (s == "wired") return measure::AccessKind::kWired;
  return measure::AccessKind::kStarlink;
}

int cmd_ping(measure::Testbed& bed, const Flags& flags) {
  const auto access = parse_access(flags.get("access", "starlink"));
  const auto anchor_index =
      static_cast<std::size_t>(flags.get_int("anchor", 0)) % bed.anchors().size();
  const auto& anchor = bed.anchor(anchor_index);
  apps::PingApp::Config config;
  config.target = anchor.host->addr();
  config.count = static_cast<int>(flags.get_int("count", 5));
  apps::PingApp ping{bed.client(access), config};
  std::printf("PING %s (%s) from %s\n", anchor.name.c_str(),
              sim::addr_to_string(anchor.host->addr()).c_str(),
              std::string{measure::to_string(access)}.c_str());
  ping.on_complete = [&](const std::vector<apps::PingApp::Probe>& probes) {
    int lost = 0;
    for (const auto& probe : probes) {
      if (probe.lost) {
        std::printf("  seq=%d timeout\n", probe.seq);
        ++lost;
      } else {
        std::printf("  seq=%d time=%.1f ms\n", probe.seq, probe.rtt.to_millis());
      }
    }
    std::printf("%d probes, %d lost\n", static_cast<int>(probes.size()), lost);
  };
  ping.start();
  bed.sim().run();
  return 0;
}

int cmd_speedtest(measure::Testbed& bed, const Flags& flags) {
  const auto access = parse_access(flags.get("access", "starlink"));
  tcp::TcpStack client_stack{bed.client(access)};
  tcp::TcpStack server_stack{bed.ookla_server()};
  apps::SpeedtestServer server{server_stack};
  apps::Speedtest::Config config;
  config.server = bed.ookla_server().addr();
  config.download = !flags.get_bool("upload", false);
  config.connections = static_cast<int>(flags.get_int("connections", 8));
  apps::Speedtest test{client_stack, config};
  std::printf("Speedtest (%s, %s, %d connections)...\n",
              std::string{measure::to_string(access)}.c_str(),
              config.download ? "download" : "upload", config.connections);
  test.on_complete = [](const apps::Speedtest::Result& result) {
    std::printf("  %.1f Mbit/s over %.1f s (%llu bytes)\n", result.goodput.to_mbps(),
                result.window.to_seconds(),
                static_cast<unsigned long long>(result.bytes_measured));
  };
  test.start();
  bed.sim().run();
  return 0;
}

int cmd_h3(measure::Testbed& bed, const Flags& flags) {
  quic::QuicStack client_stack{bed.client(measure::AccessKind::kStarlink)};
  quic::QuicStack server_stack{bed.campus_server()};
  const auto mb = static_cast<std::uint64_t>(flags.get_int("mb", 100));
  apps::H3Server::Config server_config;
  server_config.object_bytes = mb * 1'000'000;
  apps::H3Server server{server_stack, server_config};
  apps::H3Client::Config config;
  config.server = bed.campus_server().addr();
  config.download = !flags.get_bool("upload", false);
  config.bytes = mb * 1'000'000;
  apps::H3Client h3{client_stack, config};
  h3.start();
  quic::QlogTrace trace;
  const bool want_qlog = flags.get_bool("qlog", false);
  if (want_qlog) trace.attach(h3.connection(), "h3-transfer");
  std::printf("H3 %s of %llu MB over Starlink...\n", config.download ? "GET" : "PUT",
              static_cast<unsigned long long>(mb));
  h3.on_complete = [&](const apps::H3Client::Result& result) {
    std::printf("  %.1f Mbit/s in %.2f s, %llu packets lost\n", result.goodput.to_mbps(),
                result.duration.to_seconds(),
                static_cast<unsigned long long>(result.packets_lost));
  };
  bed.sim().run();
  if (want_qlog) {
    const std::string path = flags.get("qlog-file", "h3.qlog.json");
    std::ofstream out{path};
    trace.write_json(out);
    std::printf("  qlog with %zu events written to %s\n", trace.size(), path.c_str());
  }
  return 0;
}

int cmd_traceroute(measure::Testbed& bed, const Flags& flags) {
  const auto access = parse_access(flags.get("access", "starlink"));
  mbox::Traceroute::Config config;
  config.target = bed.campus_server().addr();
  mbox::Traceroute traceroute{bed.client(access), config};
  std::printf("traceroute to campus-server (%s) from %s\n",
              sim::addr_to_string(config.target).c_str(),
              std::string{measure::to_string(access)}.c_str());
  traceroute.on_complete = [](const std::vector<mbox::Traceroute::Hop>& hops) {
    for (const auto& hop : hops) {
      if (hop.reporter == 0) {
        std::printf("  %2d  *\n", hop.ttl);
      } else {
        std::printf("  %2d  %-16s %7.1f ms%s\n", hop.ttl,
                    sim::addr_to_string(hop.reporter).c_str(), hop.rtt.to_millis(),
                    hop.reached_destination ? "  (destination)" : "");
      }
    }
  };
  traceroute.start();
  bed.sim().run();
  return 0;
}

int cmd_wehe(measure::Testbed& bed, const Flags& flags) {
  const auto access = parse_access(flags.get("access", "starlink"));
  mbox::WeheServer server{bed.campus_server()};
  mbox::WeheClient::Config config;
  config.server = bed.campus_server().addr();
  config.repetitions = static_cast<int>(flags.get_int("reps", 3));
  mbox::WeheClient wehe{bed.client(access), config};
  std::printf("Wehe differential replay (%d repetitions) over %s...\n", config.repetitions,
              std::string{measure::to_string(access)}.c_str());
  wehe.on_complete = [](const mbox::WeheClient::Report& report) {
    std::printf("  original %.2f Mbit/s vs randomized %.2f Mbit/s -> %s\n",
                report.mean_original_mbps, report.mean_randomized_mbps,
                report.differentiation_detected ? "DIFFERENTIATION DETECTED"
                                                : "no differentiation");
  };
  wehe.start();
  bed.sim().run();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slp;
  const Flags flags = Flags::parse(argc, argv);
  if (flags.positional().empty()) {
    std::printf("usage: starlink_cli <ping|speedtest|h3|traceroute|wehe> [flags]\n"
                "flags: --access=starlink|satcom|wired --seed=N, plus per-command "
                "flags (see the file header)\n");
    return 1;
  }
  measure::TestbedConfig config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  measure::Testbed bed{config};

  const std::string& command = flags.positional()[0];
  if (command == "ping") return cmd_ping(bed, flags);
  if (command == "speedtest") return cmd_speedtest(bed, flags);
  if (command == "h3") return cmd_h3(bed, flags);
  if (command == "traceroute") return cmd_traceroute(bed, flags);
  if (command == "wehe") return cmd_wehe(bed, flags);
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return 1;
}
