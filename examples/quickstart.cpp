// quickstart — the 60-second tour of the library.
//
// Builds the paper's testbed (Starlink + GEO SatCom + wired accesses, the
// 11 ping anchors, campus server), then measures the three things everyone
// asks about a new access technology: latency, bulk throughput, and loss.
//
//   $ ./build/examples/quickstart [--seed=N]
#include <cstdio>

#include "apps/h3.hpp"
#include "apps/ping.hpp"
#include "measure/testbed.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace slp;
  const Flags flags = Flags::parse(argc, argv);

  // 1. Build the world: one call gives you the whole measurement universe.
  measure::TestbedConfig config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  measure::Testbed bed{config};
  std::printf("Testbed up: %zu nodes, %zu links, %zu anchors\n\n",
              bed.net().node_count(), bed.net().link_count(), bed.anchors().size());

  // 2. Ping a nearby anchor from each access technology.
  std::printf("== 5 pings to %s from each access ==\n", bed.anchor(0).name.c_str());
  for (const auto kind : {measure::AccessKind::kStarlink, measure::AccessKind::kSatCom,
                          measure::AccessKind::kWired}) {
    apps::PingApp::Config ping_config;
    ping_config.target = bed.anchor(0).host->addr();
    ping_config.count = 5;
    apps::PingApp ping{bed.client(kind), ping_config};
    ping.on_complete = [kind](const std::vector<apps::PingApp::Probe>& probes) {
      std::printf("  %-8s:", std::string{measure::to_string(kind)}.c_str());
      for (const auto& probe : probes) {
        if (probe.lost) {
          std::printf("   lost");
        } else {
          std::printf(" %5.1fms", probe.rtt.to_millis());
        }
      }
      std::printf("\n");
    };
    ping.start();
    bed.sim().run();
  }

  // 3. One 25 MB HTTP/3 download over Starlink, with loss accounting.
  std::printf("\n== 25 MB HTTP/3 download over Starlink ==\n");
  quic::QuicStack client_stack{bed.client(measure::AccessKind::kStarlink)};
  quic::QuicStack server_stack{bed.campus_server()};
  apps::H3Server::Config server_config;
  server_config.object_bytes = 25'000'000;
  apps::H3Server server{server_stack, server_config};

  apps::H3Client::Config h3_config;
  h3_config.server = bed.campus_server().addr();
  h3_config.bytes = 25'000'000;
  apps::H3Client h3{client_stack, h3_config};
  h3.on_complete = [&](const apps::H3Client::Result& result) {
    std::printf("  transferred %.1f MB in %.2f s -> %.1f Mbit/s, %llu packets lost\n",
                result.bytes / 1e6, result.duration.to_seconds(),
                result.goodput.to_mbps(),
                static_cast<unsigned long long>(result.packets_lost));
  };
  h3.start();
  bed.sim().run();

  std::printf("\nDone. Explore bench/ for every figure and table of the paper.\n");
  return 0;
}
